#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench/sweep.hh"
#include "common/build_info.hh"
#include "common/log.hh"
#include "fault/fault_model.hh"
#include "replay/recording.hh"
#include "replay/session.hh"
#include "trace/trace.hh"

namespace killi::serve
{

namespace
{

long long
steadyMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** A plausible content hash: 64 lowercase hex digits. Checked before
 *  splicing a client-supplied fetch key into a reply, so the key can
 *  never break out of its JSON string. */
bool
isContentHash(const std::string &key)
{
    if (key.size() != 64)
        return false;
    for (const char c : key)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

/**
 * The terminal frame for a computed/cached result is spliced
 * together as text so the "result" member is the *stored bytes* —
 * a cache hit is byte-identical to the original reply by
 * construction, never re-encoded.
 */
std::string
resultFrameText(std::uint64_t id, bool cached, const std::string &hash,
                const std::string &resultText,
                const std::string &spansText = "",
                const std::string &fleetText = "")
{
    std::string out = "{\"type\":\"result\",\"id\":";
    out += std::to_string(id);
    out += ",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"key\":\"";
    out += hash;
    out += "\",\"outcome\":\"done\",\"result\":";
    out += resultText;
    // Spans and fleet attribution ride as frame-level siblings,
    // never inside "result": the "result" member is the cached bytes
    // and must stay byte-identical between the cold run and every
    // later hit.
    if (!spansText.empty()) {
        out += ",\"spans\":";
        out += spansText;
    }
    if (!fleetText.empty()) {
        out += ",\"fleet\":";
        out += fleetText;
    }
    out += "}";
    return out;
}

double
sinceSeconds(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** kserved_job_stage_seconds label values, indexed like
 *  Server::mStageSeconds. */
constexpr const char *kStageNames[6] = {"decode",    "queue", "setup",
                                        "run",       "serialize",
                                        "reply"};

Json
terminalFrame(std::uint64_t id, const std::string &hash,
              const char *outcome, const std::string &error)
{
    Json doc = Json::object();
    doc.set("type", Json::string("result"));
    doc.set("id", Json::number(id));
    doc.set("cached", Json::boolean(false));
    doc.set("key", Json::string(hash));
    doc.set("outcome", Json::string(outcome));
    doc.set("error", Json::string(error));
    return doc;
}

} // namespace

Server::Server(ServerOptions options)
    : opt(std::move(options)),
      scheduler(opt.threads, opt.maxQueue, &registry),
      cache(opt.cacheEntries, &registry),
      warm(opt.warmStoreMb << 20, &registry),
      bootTime(std::chrono::steady_clock::now())
{
    registerServerMetrics();
}

Json
Server::JobSpans::toJson(double totalSeconds) const
{
    Json doc = Json::object();
    doc.set("decode_s", Json::number(decode));
    doc.set("queue_s", Json::number(queue));
    doc.set("setup_s", Json::number(setup));
    doc.set("run_s", Json::number(run));
    doc.set("serialize_s", Json::number(serialize));
    doc.set("reply_s", Json::number(reply));
    doc.set("total_s", Json::number(totalSeconds));
    return doc;
}

void
Server::registerServerMetrics()
{
    mConnections = &registry.counter("kserved_connections_total",
                                     "Client connections accepted");
    mConnsRejected = &registry.counter(
        "kserved_connections_rejected_total",
        "Connections refused by the max-conns admission bound");
    mFramesIn = &registry.counter("kserved_frames_received_total",
                                  "Protocol frames decoded from clients");
    mFramesOut = &registry.counter("kserved_frames_sent_total",
                                   "Protocol frames enqueued to clients");
    mProtocolErrors =
        &registry.counter("kserved_protocol_errors_total",
                          "Malformed frames and unknown frame types");
    mOutboxBytes =
        &registry.counter("kserved_outbox_bytes_total",
                          "Encoded reply bytes enqueued to outboxes");
    mHttpRequests =
        &registry.counter("kserved_http_requests_total",
                          "Requests served by the /metrics listener");
    mFetchHits = &registry.counter(
        "kserved_fetch_hits_total",
        "Fetch frames answered from the result cache by hash");
    mFetchMisses = &registry.counter(
        "kserved_fetch_misses_total",
        "Fetch frames that found no entry for the hash");
    mSlowJobs = &registry.counter(
        "kserved_slow_jobs_total",
        "Jobs that exceeded the slow-job threshold");
    mJobsDone = &registry.counter("kserved_jobs_total",
                                  "Finished jobs by terminal outcome",
                                  {{"outcome", "done"}});
    mJobsFailed = &registry.counter("kserved_jobs_total",
                                    "Finished jobs by terminal outcome",
                                    {{"outcome", "failed"}});
    mJobsCancelled =
        &registry.counter("kserved_jobs_total",
                          "Finished jobs by terminal outcome",
                          {{"outcome", "cancelled"}});
    mJobsRejected =
        &registry.counter("kserved_jobs_total",
                          "Finished jobs by terminal outcome",
                          {{"outcome", "rejected"}});
    mJobSeconds = &registry.histogram(
        "kserved_job_seconds",
        "End-to-end submit-to-finish latency (cache hits observe 0)");
    for (std::size_t k = 0; k < 6; ++k) {
        mStageSeconds[k] = &registry.histogram(
            "kserved_job_stage_seconds",
            "Per-stage job lifecycle latency",
            {{"stage", kStageNames[k]}});
    }
    registry.gauge("kserved_io_reactors",
                   "Reactor (epoll I/O) threads serving connections")
        .set(double(std::max(1u, opt.ioThreads)));
    registry.gaugeFn("kserved_connections_active",
                     "Client connections currently open", {}, [this] {
                         return double(activeConns.load(
                             std::memory_order_relaxed));
                     });
    registry.gaugeFn("kserved_uptime_seconds",
                     "Seconds since the daemon booted", {}, [this] {
                         return sinceSeconds(
                             bootTime,
                             std::chrono::steady_clock::now());
                     });
    registry.counterFn("ktrace_dropped_records_total",
                       "Trace records lost to ring-buffer wraparound "
                       "(process-wide)",
                       {}, [] { return traceDroppedRecordsTotal(); });
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = what + ": " + std::strerror(errno);
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        if (metricsFd >= 0) {
            ::close(metricsFd);
            metricsFd = -1;
        }
        for (const auto &r : reactors) {
            if (r->epollFd >= 0)
                ::close(r->epollFd);
            for (int fd : r->wakeFd)
                if (fd >= 0)
                    ::close(fd);
        }
        reactors.clear();
        return false;
    };

    if (!opt.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err)
                *err = "socket path too long: " + opt.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        ::unlink(opt.socketPath.c_str()); // stale socket from a crash
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind " + opt.socketPath);
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opt.port);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind 127.0.0.1:" + std::to_string(opt.port));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return fail("getsockname");
        portBound = ntohs(bound.sin_port);
    }
    if (::listen(listenFd, 1024) != 0)
        return fail("listen");
    setNonBlocking(listenFd);

    if (opt.metricsHttp) {
        metricsFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (metricsFd < 0)
            return fail("metrics socket");
        const int one = 1;
        ::setsockopt(metricsFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opt.metricsPort);
        if (::bind(metricsFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind metrics 127.0.0.1:" +
                        std::to_string(opt.metricsPort));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(metricsFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return fail("getsockname metrics");
        metricsPortBound = ntohs(bound.sin_port);
        if (::listen(metricsFd, 16) != 0)
            return fail("listen metrics");
        setNonBlocking(metricsFd);
    }

    const unsigned nReactors = std::max(1u, opt.ioThreads);
    for (unsigned i = 0; i < nReactors; ++i) {
        auto r = std::make_unique<Reactor>();
        r->idx = i;
        r->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
        if (r->epollFd < 0) {
            reactors.push_back(std::move(r));
            return fail("epoll_create1");
        }
        if (::pipe(r->wakeFd) != 0) {
            reactors.push_back(std::move(r));
            return fail("pipe");
        }
        setNonBlocking(r->wakeFd[0]);
        setNonBlocking(r->wakeFd[1]);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = r->wakeFd[0];
        if (::epoll_ctl(r->epollFd, EPOLL_CTL_ADD, r->wakeFd[0],
                        &ev) != 0) {
            reactors.push_back(std::move(r));
            return fail("epoll_ctl wake");
        }
        // Sharded accept: every reactor polls the one listening
        // socket, EPOLLEXCLUSIVE keeps the kernel from waking the
        // whole pool per pending connection (no thundering herd).
        ev.events = EPOLLIN | EPOLLEXCLUSIVE;
        ev.data.fd = listenFd;
        if (::epoll_ctl(r->epollFd, EPOLL_CTL_ADD, listenFd, &ev) !=
            0) {
            reactors.push_back(std::move(r));
            return fail("epoll_ctl listen");
        }
        r->acceptArmed = true;
        if (i == 0 && metricsFd >= 0) {
            ev.events = EPOLLIN;
            ev.data.fd = metricsFd;
            if (::epoll_ctl(r->epollFd, EPOLL_CTL_ADD, metricsFd,
                            &ev) != 0) {
                reactors.push_back(std::move(r));
                return fail("epoll_ctl metrics");
            }
            r->metricsArmed = true;
        }
        const std::string label = std::to_string(i);
        r->mAccepted = &registry.counter(
            "kserved_reactor_connections_total",
            "Connections accepted, by owning reactor",
            {{"reactor", label}});
        r->mWakeups = &registry.counter(
            "kserved_reactor_wakeups_total",
            "Reactor wakeups via the wake pipe (worker-enqueued "
            "frames and drain signals)",
            {{"reactor", label}});
        reactors.push_back(std::move(r));
    }

    started.store(true);
    for (auto &r : reactors)
        r->thread =
            std::thread(&Server::reactorLoop, this, std::ref(*r));
    return true;
}

void
Server::wakeReactor(const Reactor &r)
{
    if (r.wakeFd[1] >= 0) {
        const char c = 0;
        // Non-blocking; a full pipe already guarantees a wakeup.
        [[maybe_unused]] ssize_t n = ::write(r.wakeFd[1], &c, 1);
    }
}

void
Server::notifyConn(const std::shared_ptr<Connection> &conn)
{
    const int idx = conn->reactorIdx.load(std::memory_order_acquire);
    if (idx < 0 || std::size_t(idx) >= reactors.size())
        return;
    if (conn->notified.exchange(true, std::memory_order_acq_rel))
        return; // owning reactor already has a pending entry
    Reactor &r = *reactors[std::size_t(idx)];
    {
        std::lock_guard<std::mutex> lock(r.pendingMtx);
        r.pending.push_back(conn);
    }
    wakeReactor(r);
}

void
Server::requestDrain()
{
    drainFlag.store(true, std::memory_order_relaxed);
    for (const auto &r : reactors)
        wakeReactor(*r);
}

void
Server::waitDone()
{
    if (!started.load(std::memory_order_acquire))
        return;
    for (auto &r : reactors)
        if (r->thread.joinable())
            r->thread.join();
    cleanupAfterJoin();
}

void
Server::stop()
{
    requestDrain();
    waitDone();
}

void
Server::cleanupAfterJoin()
{
    if (cleanedUp.exchange(true))
        return;
    for (const auto &r : reactors) {
        if (r->epollFd >= 0)
            ::close(r->epollFd);
        for (int fd : r->wakeFd)
            if (fd >= 0)
                ::close(fd);
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (metricsFd >= 0) {
        ::close(metricsFd);
        metricsFd = -1;
    }
    if (!opt.socketPath.empty())
        ::unlink(opt.socketPath.c_str());
    // Drained for good: release cached results and warm state in one
    // sweep each, so the byte/entry gauges read 0 afterwards instead
    // of drifting (evictions racing a per-entry teardown used to
    // leave the bytes gauge stuck at the raced entries' sizes).
    cache.clear();
    warm.clear();
}

void
Server::acceptClients(Reactor &r)
{
    while (true) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->reactorIdx.store(int(r.idx),
                               std::memory_order_release);
        r.connByFd.emplace(fd, conn);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(r.epollFd, EPOLL_CTL_ADD, fd, &ev);
        mConnections->inc();
        r.mAccepted->inc();
        const std::int64_t active =
            activeConns.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opt.maxConns > 0 &&
            std::uint64_t(active) > opt.maxConns) {
            // Admission control: answer with explicit backpressure
            // and close once the error frame flushes; the barrage
            // sees a clean protocol-level rejection, not a hang or
            // an accept-queue overflow.
            mConnsRejected->inc();
            enqueueFrame(conn,
                         encodeFrame(errorReply(
                             "overloaded",
                             "connection limit reached (" +
                                 std::to_string(opt.maxConns) +
                                 "); retry later")));
            std::lock_guard<std::mutex> lock(conn->mtx);
            conn->closeAfterFlush = true;
        }
    }
}

void
Server::closeConnection(Reactor &r,
                        const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    conn->closed.store(true, std::memory_order_relaxed);
    // Orphaned jobs would burn a worker computing a result nobody
    // will read; cancel them (queued ones go away immediately,
    // running ones wind down at the next sweep point).
    std::vector<std::uint64_t> orphans;
    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        for (const auto &[id, rec] : jobs)
            if (rec.conn == conn)
                orphans.push_back(id);
    }
    for (const std::uint64_t id : orphans)
        scheduler.cancel(id);
    ::epoll_ctl(r.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    r.connByFd.erase(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
    activeConns.fetch_sub(1, std::memory_order_relaxed);
}

void
Server::enqueueFrame(const std::shared_ptr<Connection> &conn,
                     std::string bytes)
{
    mFramesOut->inc();
    mOutboxBytes->inc(bytes.size());
    conn->enqueue(std::move(bytes));
    notifyConn(conn);
}

void
Server::readFromClient(Reactor &r,
                       const std::shared_ptr<Connection> &conn)
{
    char buf[65536];
    while (true) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn->decoder.feed(buf, std::size_t(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error: drop the connection.
        closeConnection(r, conn);
        return;
    }

    Json frame;
    FrameDecoder::Status st;
    while ((st = conn->decoder.next(frame)) ==
           FrameDecoder::Status::Frame) {
        mFramesIn->inc();
        handleFrame(conn, frame);
    }
    if (st == FrameDecoder::Status::Error) {
        mProtocolErrors->inc();
        enqueueFrame(conn, encodeFrame(errorReply(
                               "protocol", conn->decoder.error())));
        std::lock_guard<std::mutex> lock(conn->mtx);
        conn->closeAfterFlush = true;
    }
}

void
Server::flushToClient(Reactor &r,
                      const std::shared_ptr<Connection> &conn)
{
    bool close = false;
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        while (!conn->outq.empty()) {
            // Gather the queued frames straight out of the deque —
            // no flattening copy — and hand them to the kernel in
            // one sendmsg (MSG_NOSIGNAL: a vanished peer is an
            // errno, not a SIGPIPE).
            iovec iov[16];
            int iovCnt = 0;
            std::size_t skip = conn->outOff;
            for (const std::string &chunk : conn->outq) {
                if (iovCnt == 16)
                    break;
                iov[iovCnt].iov_base =
                    const_cast<char *>(chunk.data() + skip);
                iov[iovCnt].iov_len = chunk.size() - skip;
                ++iovCnt;
                skip = 0;
            }
            msghdr msg{};
            msg.msg_iov = iov;
            msg.msg_iovlen = std::size_t(iovCnt);
            const ssize_t n =
                ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
            if (n > 0) {
                std::size_t left = std::size_t(n);
                while (left > 0 && !conn->outq.empty()) {
                    const std::size_t avail =
                        conn->outq.front().size() - conn->outOff;
                    if (left >= avail) {
                        left -= avail;
                        conn->outq.pop_front();
                        conn->outOff = 0;
                    } else {
                        conn->outOff += left;
                        left = 0;
                    }
                }
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            close = true; // peer vanished mid-write
            break;
        }
        if (conn->outq.empty() && conn->closeAfterFlush)
            close = true;
    }
    if (close)
        closeConnection(r, conn);
}

void
Server::flushAndArm(Reactor &r,
                    const std::shared_ptr<Connection> &conn)
{
    flushToClient(r, conn);
    if (conn->fd < 0)
        return;
    const bool want = conn->pendingOut();
    if (want != conn->outArmed) {
        conn->outArmed = want;
        epoll_event ev{};
        ev.events = EPOLLIN | (want ? std::uint32_t(EPOLLOUT) : 0u);
        ev.data.fd = conn->fd;
        ::epoll_ctl(r.epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
    }
}

void
Server::reactorLoop(Reactor &r)
{
    epoll_event evs[128];
    while (true) {
        if (!r.draining && drainFlag.load(std::memory_order_relaxed)) {
            r.draining = true;
            if (!drainAnnounced.exchange(true))
                inform("kserved: draining (in-flight jobs finish, "
                       "queued jobs cancelled)");
            if (!drainBegun.exchange(true))
                scheduler.beginDrain();
            if (r.acceptArmed) {
                ::epoll_ctl(r.epollFd, EPOLL_CTL_DEL, listenFd,
                            nullptr);
                r.acceptArmed = false;
            }
            // The metrics plane shuts with the intake: a scrape of a
            // half-drained daemon is not a state worth serving.
            if (r.metricsArmed) {
                ::epoll_ctl(r.epollFd, EPOLL_CTL_DEL, metricsFd,
                            nullptr);
                r.metricsArmed = false;
            }
            for (const auto &[fd, hc] : r.httpByFd) {
                ::epoll_ctl(r.epollFd, EPOLL_CTL_DEL, fd, nullptr);
                ::close(fd);
            }
            r.httpByFd.clear();
        }

        // While draining wait with a timeout so in-flight completion
        // (signalled via the wake pipe, but belt and braces) is
        // always noticed.
        const int n = ::epoll_wait(r.epollFd, evs, 128,
                                   r.draining ? 50 : -1);
        if (n < 0 && errno != EINTR) {
            warn("kserved: epoll_wait: %s", std::strerror(errno));
            break;
        }
        for (int i = 0; i < std::max(n, 0); ++i) {
            const int fd = evs[i].data.fd;
            const std::uint32_t events = evs[i].events;
            if (fd == r.wakeFd[0]) {
                char sink[256];
                while (::read(r.wakeFd[0], sink, sizeof(sink)) > 0) {
                }
                r.mWakeups->inc();
                continue;
            }
            if (fd == listenFd) {
                if (!r.draining)
                    acceptClients(r);
                continue;
            }
            if (metricsFd >= 0 && fd == metricsFd) {
                if (!r.draining)
                    acceptMetricsClients(r);
                continue;
            }
            const auto cit = r.connByFd.find(fd);
            if (cit != r.connByFd.end()) {
                const std::shared_ptr<Connection> conn = cit->second;
                if (events & (EPOLLIN | EPOLLERR | EPOLLHUP))
                    readFromClient(r, conn);
                if (conn->fd >= 0)
                    flushAndArm(r, conn);
                continue;
            }
            const auto hit = r.httpByFd.find(fd);
            if (hit != r.httpByFd.end()) {
                HttpConn &hc = hit->second;
                const bool readable = (events & EPOLLIN) != 0;
                const bool bad =
                    (events & (EPOLLERR | EPOLLHUP)) != 0;
                if (!serviceMetricsConn(hc, readable, bad)) {
                    ::epoll_ctl(r.epollFd, EPOLL_CTL_DEL, fd,
                                nullptr);
                    ::close(fd);
                    r.httpByFd.erase(hit);
                } else if ((!hc.out.empty()) != hc.outArmed) {
                    hc.outArmed = !hc.out.empty();
                    epoll_event ev{};
                    ev.events =
                        EPOLLIN |
                        (hc.outArmed ? std::uint32_t(EPOLLOUT) : 0u);
                    ev.data.fd = fd;
                    ::epoll_ctl(r.epollFd, EPOLL_CTL_MOD, fd, &ev);
                }
                continue;
            }
        }

        // Outboxes freshly filled by scheduler workers: cleared
        // before flushing, so an enqueue racing the swap re-notifies
        // and is picked up next round at the latest.
        std::vector<std::shared_ptr<Connection>> pend;
        {
            std::lock_guard<std::mutex> lock(r.pendingMtx);
            pend.swap(r.pending);
        }
        for (const auto &conn : pend) {
            conn->notified.store(false, std::memory_order_release);
            if (conn->fd >= 0)
                flushAndArm(r, conn);
        }

        if (r.draining && scheduler.idle()) {
            bool flushed = true;
            for (const auto &[fd, conn] : r.connByFd)
                if (conn->pendingOut())
                    flushed = false;
            if (flushed)
                break;
        }
    }

    std::vector<std::shared_ptr<Connection>> remaining;
    remaining.reserve(r.connByFd.size());
    for (const auto &[fd, conn] : r.connByFd)
        remaining.push_back(conn);
    for (const auto &conn : remaining)
        closeConnection(r, conn);
    for (const auto &[fd, hc] : r.httpByFd)
        ::close(fd);
    r.httpByFd.clear();
}

void
Server::acceptMetricsClients(Reactor &r)
{
    while (true) {
        const int fd = ::accept(metricsFd, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        HttpConn hc;
        hc.fd = fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(r.epollFd, EPOLL_CTL_ADD, fd, &ev);
        r.httpByFd.emplace(fd, std::move(hc));
    }
}

bool
Server::serviceMetricsConn(HttpConn &conn, bool readable, bool error)
{
    if (error)
        return false;

    if (readable) {
        char buf[4096];
        while (true) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.in.append(buf, std::size_t(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF or hard error
        }
        if (conn.out.empty()) {
            if (conn.in.size() > 8192)
                return false; // not a plausible scrape request
            const auto headerEnd = conn.in.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                mHttpRequests->inc();
                const auto lineEnd = conn.in.find("\r\n");
                const std::string line = conn.in.substr(0, lineEnd);
                std::string status = "404 Not Found";
                std::string body = "not found\n";
                if (line.rfind("GET ", 0) != 0) {
                    status = "405 Method Not Allowed";
                    body = "only GET is supported\n";
                } else if (line.rfind("GET /metrics ", 0) == 0 ||
                           line.rfind("GET /metrics?", 0) == 0) {
                    status = "200 OK";
                    body = registry.prometheusText();
                }
                conn.out = "HTTP/1.0 " + status +
                           "\r\nContent-Type: text/plain; "
                           "version=0.0.4; charset=utf-8\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" +
                           body;
            }
        }
    }

    while (!conn.out.empty()) {
        const ssize_t n = ::send(conn.fd, conn.out.data(),
                                 conn.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, std::size_t(n));
            if (conn.out.empty())
                return false; // answered; close (Connection: close)
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const Json &req)
{
    const std::string &type = req.at("type").asString();

    if (type == "ping") {
        Json doc = Json::object();
        doc.set("type", Json::string("pong"));
        doc.set("build", Json::string(buildId()));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "stats") {
        Json doc = Json::object();
        doc.set("type", Json::string("stats_reply"));
        doc.set("stats", statsJson());
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "metrics") {
        // Both views come from the same registry walk a scrape
        // would take, so the frame and GET /metrics always agree.
        Json doc = Json::object();
        doc.set("type", Json::string("metrics_reply"));
        doc.set("build", Json::string(buildId()));
        doc.set("metrics", registry.toJson());
        doc.set("text", Json::string(registry.prometheusText()));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "fetch") {
        // Peer transfer: address the result cache by content hash.
        // The hash format is validated before it is spliced into the
        // reply text, and the hit path reuses the stored bytes so a
        // fetched result is byte-identical to the original reply's
        // "result" member.
        if (!req.contains("key") ||
            req.at("key").kind() != Json::Kind::String ||
            !isContentHash(req.at("key").asString())) {
            enqueueFrame(
                conn, encodeFrame(errorReply(
                          "bad_request",
                          "\"fetch\" needs a 64-hex-digit string "
                          "\"key\"")));
            return;
        }
        const std::string &key = req.at("key").asString();
        std::string text;
        if (cache.lookupByHash(key, text)) {
            mFetchHits->inc();
            std::string out =
                "{\"type\":\"fetch_reply\",\"found\":true,"
                "\"key\":\"";
            out += key;
            out += "\",\"result\":";
            out += text;
            out += "}";
            enqueueFrame(conn, encodeFramePayload(out));
        } else {
            mFetchMisses->inc();
            Json doc = Json::object();
            doc.set("type", Json::string("fetch_reply"));
            doc.set("found", Json::boolean(false));
            doc.set("key", Json::string(key));
            enqueueFrame(conn, encodeFrame(doc));
        }
        return;
    }

    if (type == "drain") {
        requestDrain();
        Json doc = Json::object();
        doc.set("type", Json::string("draining"));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "status" || type == "cancel") {
        if (!req.contains("id") || !req.at("id").isNumber() ||
            req.at("id").asDouble() < 0 ||
            req.at("id").asDouble() !=
                std::floor(req.at("id").asDouble())) {
            enqueueFrame(conn, encodeFrame(errorReply(
                                   "bad_request",
                                   "\"" + type +
                                       "\" needs a non-negative "
                                       "integer \"id\"")));
            return;
        }
        const std::uint64_t id =
            std::uint64_t(req.at("id").asDouble());
        Json doc = Json::object();
        if (type == "status") {
            bool known = false;
            const JobState st = scheduler.state(id, &known);
            doc.set("type", Json::string("status_reply"));
            doc.set("id", Json::number(id));
            doc.set("known", Json::boolean(known));
            if (known)
                doc.set("state", Json::string(jobStateName(st)));
            if (opt.statusAnnotator) {
                const Json extra = opt.statusAnnotator(id);
                if (!extra.isNull())
                    doc.set("fleet", extra);
            }
        } else {
            doc.set("type", Json::string("cancel_reply"));
            doc.set("id", Json::number(id));
            doc.set("cancelled",
                    Json::boolean(scheduler.cancel(id)));
        }
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "submit") {
        handleSubmit(conn, req);
        return;
    }

    mProtocolErrors->inc();
    enqueueFrame(conn, encodeFrame(errorReply(
                           "unknown_type",
                           "unknown frame type \"" + type + "\"")));
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Json &req)
{
    auto spans = std::make_shared<JobSpans>();
    spans->submit = std::chrono::steady_clock::now();

    SubmitRequest sub;
    std::string verr;
    if (!parseSubmit(req, sub, verr)) {
        enqueueFrame(conn,
                     encodeFrame(errorReply("bad_request", verr)));
        return;
    }

    const std::string canonical = canonicalKeyFor(sub.sopt);
    spans->decode = sinceSeconds(spans->submit,
                                 std::chrono::steady_clock::now());
    const std::uint64_t id =
        nextJobId.fetch_add(1, std::memory_order_relaxed);

    // Record/replay jobs bypass the cache entirely — neither lookup
    // (a cached result has no recording / no verification verdict)
    // nor, later, insert (finishJob honours JobRecord::noCache).
    const bool bypassCache = sub.record || sub.replayRec != nullptr;
    std::string hash;
    std::string cachedText;
    const bool hit =
        !bypassCache && cache.lookup(canonical, cachedText, &hash);
    if (bypassCache)
        hash = ResultCache::hashKey(canonical);

    Json submitted = Json::object();
    submitted.set("type", Json::string("submitted"));
    submitted.set("id", Json::number(id));
    submitted.set("key", Json::string(hash));
    submitted.set("cached", Json::boolean(hit));
    enqueueFrame(conn, encodeFrame(submitted));

    if (hit) {
        // Hits keep the historical latency convention (0 s) and
        // observe only the decode stage — there is no queue/run/
        // serialize for a spliced reply.
        mJobSeconds->observe(0.0);
        mStageSeconds[0]->observe(spans->decode);
        spans->reply = sinceSeconds(
            spans->submit, std::chrono::steady_clock::now()) -
            spans->decode;
        const std::string spansText =
            spans->toJson(spans->decode + spans->reply).toString(0);
        enqueueFrame(conn,
                     encodeFramePayload(resultFrameText(
                         id, true, hash, cachedText, spansText)));
        return;
    }

    auto fleetInfo = std::make_shared<Json>();
    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        jobs.emplace(id, JobRecord{conn, canonical, hash,
                                   spans->submit, bypassCache,
                                   spans, fleetInfo});
    }

    // Plain sweeps go through the fleet backend when one is
    // configured; record/replay jobs always run locally (their
    // verdicts and recordings are tied to this process's run).
    const bool viaFleet = opt.fleetRunner != nullptr &&
                          !sub.record && sub.replayRec == nullptr;
    const bool stream = sub.stream;
    auto work = [this, sub, id, conn, stream, spans, fleetInfo,
                 viaFleet](const CancelToken &cancel)
        -> std::string {
        const auto workStart = std::chrono::steady_clock::now();
        spans->queue = sinceSeconds(spans->submit, workStart) -
                       spans->decode;
        if (opt.debugJobDelaySeconds > 0) {
            // Cancellable fixed service-time injection (straggler
            // and emulation hook; see ServerOptions).
            const auto until =
                workStart +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        opt.debugJobDelaySeconds));
            while (!cancel.cancelled() &&
                   std::chrono::steady_clock::now() < until)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            if (cancel.cancelled())
                return "";
        }
        const SweepOptions &sopt = sub.sopt;
        FleetProgressFn progressFn;
        if (stream) {
            // Periodic snapshots throttled to ~10/s per job; point
            // completions always go out.
            auto lastMs = std::make_shared<std::atomic<long long>>(
                -1000000);
            progressFn = [this, id, conn,
                          lastMs](const SweepProgress &p) {
                if (conn->closed.load(std::memory_order_relaxed))
                    return;
                if (!p.pointDone) {
                    const long long now = steadyMs();
                    if (now - lastMs->load() < 100)
                        return;
                    lastMs->store(now);
                }
                Json doc = Json::object();
                doc.set("type", Json::string("progress"));
                doc.set("id", Json::number(id));
                doc.set("point", Json::string(p.point));
                doc.set("tick", Json::number(std::uint64_t(p.tick)));
                doc.set("instructions",
                        Json::number(p.instructions));
                doc.set("point_done", Json::boolean(p.pointDone));
                doc.set("done",
                        Json::number(std::uint64_t(p.pointsDone)));
                doc.set("total",
                        Json::number(std::uint64_t(p.pointsTotal)));
                enqueueFrame(conn, encodeFrame(doc));
            };
        }
        Json doc = Json::object();
        const auto preRun = std::chrono::steady_clock::now();
        spans->setup = sinceSeconds(workStart, preRun);
        std::chrono::steady_clock::time_point postRun;
        if (viaFleet) {
            doc = opt.fleetRunner(id, sub, cancel, progressFn,
                                  fleetInfo.get());
            postRun = std::chrono::steady_clock::now();
            if (cancel.cancelled())
                return "";
        } else {
            doc.set("bench", Json::string("kserved"));
            doc.set("options", resolvedOptionsJson(sopt));
            SweepOptions ropt = sopt;
            ropt.cancel = &cancel;
            ropt.onProgress = progressFn;
            // Plain jobs share sampled fault populations through the
            // warm store: jobs that differ only in workload/scheme
            // subsets miss the result cache but describe the same
            // die, so it is synthesized once (single-flight) and
            // adopted bit-identically everywhere else. Record/replay
            // jobs must sample cold — adopting a population skips
            // the sampler's RNG draws, which recordings capture.
            if (!sub.record && !sub.replayRec &&
                opt.warmStoreMb > 0) {
                ropt.warmFaultSource =
                    [this, scenario = sopt.scenario](
                        const FaultModel &model,
                        std::size_t numLines,
                        std::size_t lineBits) {
                        return warm.faultPopulation(
                            WarmStore::faultMapKey(scenario,
                                                   numLines,
                                                   lineBits),
                            [&model, numLines, lineBits] {
                                return model
                                    .buildMap(numLines, lineBits)
                                    ->population();
                            });
                    };
            }
            if (sub.replayRec) {
                // Re-run from the recording and attach the
                // verification verdict; the sweep body itself is the
                // replayed run's.
                const replay::SweepSession s =
                    replay::replaySweep(*sub.replayRec, &ropt);
                postRun = std::chrono::steady_clock::now();
                if (cancel.cancelled())
                    return "";
                const Json body = sweepToJson(sopt, s.result);
                for (const auto &[key, value] : body.members())
                    doc.set(key, value);
                Json rj = Json::object();
                rj.set("verified", Json::boolean(s.verified));
                rj.set("divergence", s.divergence.toJson());
                doc.set("replay", std::move(rj));
            } else if (sub.record) {
                // Capture the run; the recording travels inline in
                // the result document (the daemon writes no files).
                const replay::SweepSession s =
                    replay::recordSweep(ropt);
                postRun = std::chrono::steady_clock::now();
                if (cancel.cancelled())
                    return "";
                const Json body = sweepToJson(sopt, s.result);
                for (const auto &[key, value] : body.members())
                    doc.set(key, value);
                doc.set("recording", s.recording.toJson());
            } else {
                const SweepResult res = runEvaluationSweep(ropt);
                postRun = std::chrono::steady_clock::now();
                if (cancel.cancelled())
                    return "";
                const Json body = sweepToJson(sopt, res);
                for (const auto &[key, value] : body.members())
                    doc.set(key, value);
            }
        }
        spans->run = sinceSeconds(preRun, postRun);
        std::string text = doc.toString(0);
        spans->serializeEnd = std::chrono::steady_clock::now();
        spans->serialize = sinceSeconds(postRun, spans->serializeEnd);
        return text;
    };

    std::string errCode;
    const bool admitted = scheduler.submit(
        id, sub.priority, std::move(work),
        [this](std::uint64_t jid, JobState st,
               const std::string &text, const std::string &jerr) {
            finishJob(jid, st, text, jerr);
        },
        &errCode);
    if (!admitted) {
        {
            std::lock_guard<std::mutex> lock(jobsMtx);
            jobs.erase(id);
        }
        mJobsRejected->inc();
        // The client already holds a "submitted" frame for this id;
        // the rejection is its terminal result (the backpressure
        // reply).
        enqueueFrame(conn, encodeFrame(terminalFrame(
                               id, hash, "rejected", errCode)));
    }
}

void
Server::finishJob(std::uint64_t id, JobState state,
                  const std::string &resultText,
                  const std::string &error)
{
    JobRecord rec;
    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        const auto it = jobs.find(id);
        if (it == jobs.end())
            return;
        rec = it->second;
        jobs.erase(it);
    }
    const auto finish = std::chrono::steady_clock::now();
    const double seconds = sinceSeconds(rec.start, finish);
    mJobSeconds->observe(seconds);
    switch (state) {
      case JobState::Done: mJobsDone->inc(); break;
      case JobState::Failed: mJobsFailed->inc(); break;
      case JobState::Cancelled: mJobsCancelled->inc(); break;
      default: break;
    }

    std::string spansText;
    if (rec.spans && state == JobState::Done) {
        // Reply is the remainder of the submit-to-finish interval,
        // so the six stages tile it exactly.
        rec.spans->reply =
            sinceSeconds(rec.spans->serializeEnd, finish);
        const double stages[6] = {
            rec.spans->decode, rec.spans->queue, rec.spans->setup,
            rec.spans->run,    rec.spans->serialize,
            rec.spans->reply};
        for (std::size_t k = 0; k < 6; ++k)
            mStageSeconds[k]->observe(stages[k]);
        spansText = rec.spans->toJson(seconds).toString(0);
    }

    if (opt.slowJobSeconds > 0 && seconds >= opt.slowJobSeconds) {
        mSlowJobs->inc();
        const JobSpans empty{};
        const JobSpans &sp = rec.spans ? *rec.spans : empty;
        warn("kserved: slow job id=%llu outcome=%s total=%.3fs "
             "decode=%.3fs queue=%.3fs setup=%.3fs run=%.3fs "
             "serialize=%.3fs reply=%.3fs key=%s",
             static_cast<unsigned long long>(id), jobStateName(state),
             seconds, sp.decode, sp.queue, sp.setup, sp.run,
             sp.serialize, sp.reply, rec.hash.c_str());
    }

    std::string fleetText;
    if (rec.fleetInfo && !rec.fleetInfo->isNull())
        fleetText = rec.fleetInfo->toString(0);

    if (state == JobState::Done) {
        if (!rec.noCache)
            cache.insert(rec.canonicalKey, resultText);
        enqueueFrame(rec.conn,
                     encodeFramePayload(resultFrameText(
                         id, false, rec.hash, resultText, spansText,
                         fleetText)));
    } else {
        Json doc = terminalFrame(id, rec.hash,
                                 state == JobState::Failed
                                     ? "failed"
                                     : "cancelled",
                                 error);
        if (!fleetText.empty())
            doc.set("fleet", *rec.fleetInfo);
        enqueueFrame(rec.conn, encodeFrame(doc));
    }
}

Json
Server::statsJson()
{
    Json doc = Json::object();
    doc.set("build", Json::string(buildId()));
    doc.set("draining",
            Json::boolean(drainFlag.load(std::memory_order_relaxed)));
    doc.set("scheduler", scheduler.stats().toJson());
    doc.set("cache", cache.stats().toJson());
    doc.set("warm_store", warm.stats().toJson());
    // Same members as ever, now read from the bounded histogram
    // (O(1) memory however long the daemon lives) and the registry
    // counters. Before the first job finishes the quantiles are
    // undefined: the members stay present (clients key on them) but
    // carry an explicit null, never NaN.
    Json lat = Json::object();
    const std::uint64_t latCount = mJobSeconds->count();
    lat.set("count", Json::number(latCount));
    if (latCount == 0) {
        lat.set("mean_s", Json::null());
        lat.set("p50_s", Json::null());
        lat.set("p99_s", Json::null());
    } else {
        lat.set("mean_s", Json::number(mJobSeconds->mean()));
        lat.set("p50_s", Json::number(mJobSeconds->quantile(0.5)));
        lat.set("p99_s", Json::number(mJobSeconds->quantile(0.99)));
    }
    doc.set("latency", lat);
    Json out = Json::object();
    out.set("cache_hits", Json::number(cache.stats().hits));
    out.set("done", Json::number(mJobsDone->value()));
    out.set("failed", Json::number(mJobsFailed->value()));
    out.set("cancelled", Json::number(mJobsCancelled->value()));
    out.set("rejected", Json::number(mJobsRejected->value()));
    out.set("protocol_errors",
            Json::number(mProtocolErrors->value()));
    out.set("connections", Json::number(mConnections->value()));
    doc.set("outcomes", out);
    if (opt.statsExtra)
        doc.set("fleet", opt.statsExtra());
    return doc;
}

} // namespace killi::serve
