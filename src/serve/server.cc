#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench/sweep.hh"
#include "common/build_info.hh"
#include "common/log.hh"
#include "fault/fault_model.hh"
#include "gpu/workload.hh"
#include "replay/recording.hh"
#include "replay/session.hh"
#include "trace/trace.hh"

namespace killi::serve
{

namespace
{

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

long long
steadyMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Extract a numeric member constrained to [lo, hi]. */
bool
numberIn(const Json &value, const char *key, double lo, double hi,
         double &out, std::string &err)
{
    if (!value.isNumber()) {
        err = std::string("\"") + key + "\" must be a number";
        return false;
    }
    const double d = value.asDouble();
    if (!(d >= lo && d <= hi)) {
        std::ostringstream os;
        os << "\"" << key << "\" must be in [" << lo << ", " << hi
           << "]";
        err = os.str();
        return false;
    }
    out = d;
    return true;
}

/** Extract a non-negative integral member bounded by @p hi. */
bool
uintIn(const Json &value, const char *key, std::uint64_t hi,
       std::uint64_t &out, std::string &err)
{
    if (!value.isNumber()) {
        err = std::string("\"") + key + "\" must be a number";
        return false;
    }
    const double d = value.asDouble();
    if (!(d >= 0) || d != std::floor(d) || d > double(hi)) {
        std::ostringstream os;
        os << "\"" << key << "\" must be an integer in [0, " << hi
           << "]";
        err = os.str();
        return false;
    }
    out = std::uint64_t(d);
    return true;
}

/** Accept either a comma-separated string or an array of strings. */
bool
nameList(const Json &value, const char *key,
         std::vector<std::string> &out, std::string &err)
{
    if (value.kind() == Json::Kind::String) {
        out = splitList(value.asString());
        return true;
    }
    if (value.kind() == Json::Kind::Array) {
        out.clear();
        for (std::size_t i = 0; i < value.size(); ++i) {
            if (value.at(i).kind() != Json::Kind::String) {
                err = std::string("\"") + key +
                      "\" array members must be strings";
                return false;
            }
            out.push_back(value.at(i).asString());
        }
        return true;
    }
    err = std::string("\"") + key +
          "\" must be a comma-separated string or an array of "
          "strings";
    return false;
}

bool
validateNames(const std::vector<std::string> &got,
              const std::vector<std::string> &known, const char *what,
              std::string &err)
{
    for (const std::string &name : got) {
        if (std::find(known.begin(), known.end(), name) ==
            known.end()) {
            std::string all;
            for (const std::string &k : known)
                all += (all.empty() ? "" : ", ") + k;
            err = std::string("unknown ") + what + " '" + name +
                  "' (known: " + all + ")";
            return false;
        }
    }
    return true;
}

/** A validated submit request. */
struct SubmitRequest
{
    SweepOptions sopt;
    int priority = 0;
    bool stream = true;
    /** Capture the run into a recording returned with the result. */
    bool record = false;
    /** Replay job: the inline killi-recording-v1 to verify against.
     *  Shared so the job's work lambda holds the (large) streams
     *  without copying them. */
    std::shared_ptr<replay::Recording> replayRec;
};

/**
 * Validate and resolve a submit frame. Strict like the Options CLI
 * layer — unknown keys, bad types, and out-of-range values are all
 * rejected — but via error returns, never fatal(): the daemon must
 * answer a bad request with an error frame and keep serving. Ranges
 * mirror declareSweepOptions(). Workload/scheme subsets are resolved
 * to explicit full lists so that "all by default" and "all by name"
 * canonicalize (and cache) identically.
 */
bool
parseSubmit(const Json &req, SubmitRequest &out, std::string &err)
{
    out.sopt = SweepOptions{};
    out.sopt.warmupPasses = 2;
    // Collected first, resolved after the loop: the scenario and the
    // voltage/seed overrides may arrive in any member order, but
    // resolution must be deterministic (scenario first, overrides on
    // top — the same rule as sweepOptions()).
    bool haveScenario = false;
    bool haveOptions = false;
    ScenarioSpec scenario;
    std::optional<double> voltageOverride;
    std::optional<std::uint64_t> seedOverride;
    for (const auto &[key, value] : req.members()) {
        if (key == "type")
            continue;
        if (key == "record") {
            if (value.kind() != Json::Kind::Bool) {
                err = "\"record\" must be a boolean";
                return false;
            }
            out.record = value.asBool();
        } else if (key == "replay") {
            if (value.kind() != Json::Kind::Object) {
                err = "\"replay\" must be an inline "
                      "killi-recording-v1 object";
                return false;
            }
            auto rec = std::make_shared<replay::Recording>();
            std::string rerr;
            if (!replay::Recording::tryFromJson(value, *rec, &rerr)) {
                err = "\"replay\": " + rerr;
                return false;
            }
            if (!replay::trySweepOptionsFromMeta(*rec, out.sopt,
                                                 &rerr)) {
                err = "\"replay\": " + rerr;
                return false;
            }
            out.replayRec = std::move(rec);
        } else if (key == "priority") {
            double d = 0;
            if (!numberIn(value, "priority", -1000, 1000, d, err))
                return false;
            out.priority = int(d);
        } else if (key == "stream") {
            if (value.kind() != Json::Kind::Bool) {
                err = "\"stream\" must be a boolean";
                return false;
            }
            out.stream = value.asBool();
        } else if (key == "options") {
            if (value.kind() != Json::Kind::Object) {
                err = "\"options\" must be an object";
                return false;
            }
            haveOptions = true;
            for (const auto &[opt, v] : value.members()) {
                std::uint64_t u = 0;
                if (opt == "scale") {
                    if (!numberIn(v, "scale", 0.001, 1000.0,
                                  out.sopt.scale, err))
                        return false;
                } else if (opt == "warmup") {
                    if (!uintIn(v, "warmup", 16, u, err))
                        return false;
                    out.sopt.warmupPasses = unsigned(u);
                } else if (opt == "voltage") {
                    double d = 0.625;
                    if (!numberIn(v, "voltage", 0.5, 1.0, d, err))
                        return false;
                    voltageOverride = d;
                } else if (opt == "seed") {
                    if (!uintIn(v, "seed",
                                std::uint64_t(1) << 53, u, err))
                        return false;
                    seedOverride = u;
                } else if (opt == "scenario") {
                    // Object or inline-JSON string; file paths are a
                    // client-side concern (kcli resolves them before
                    // submitting).
                    std::string specErr;
                    if (v.kind() == Json::Kind::Object) {
                        if (!ScenarioSpec::tryFromJson(v, scenario,
                                                       &specErr)) {
                            err = specErr;
                            return false;
                        }
                    } else if (v.kind() == Json::Kind::String &&
                               !v.asString().empty() &&
                               v.asString().front() == '{') {
                        if (!ScenarioSpec::tryFromString(
                                v.asString(), scenario, &specErr)) {
                            err = specErr;
                            return false;
                        }
                    } else {
                        err = "\"scenario\" must be a scenario object "
                              "or an inline-JSON string (resolve file "
                              "paths client-side)";
                        return false;
                    }
                    haveScenario = true;
                } else if (opt == "stats_interval") {
                    if (!uintIn(v, "stats_interval",
                                std::uint64_t(1) << 53, u, err))
                        return false;
                    out.sopt.statsInterval = Cycle(u);
                } else if (opt == "retries") {
                    if (!uintIn(v, "retries", 10, u, err))
                        return false;
                    out.sopt.retries = unsigned(u);
                } else if (opt == "workloads") {
                    if (!nameList(v, "workloads",
                                  out.sopt.workloads, err))
                        return false;
                } else if (opt == "schemes") {
                    if (!nameList(v, "schemes", out.sopt.schemes,
                                  err))
                        return false;
                } else {
                    err = "unknown option \"" + opt + "\"";
                    return false;
                }
            }
        } else {
            err = "unknown submit member \"" + key + "\"";
            return false;
        }
    }

    // A replay job re-derives everything from the recording's meta;
    // options given alongside would be silently ignored, so they are
    // rejected instead (priority/stream/record stay meaningful).
    if (out.replayRec) {
        if (out.record) {
            err = "\"record\" and \"replay\" are mutually exclusive";
            return false;
        }
        if (haveOptions) {
            err = "\"replay\" jobs take their options from the "
                  "recording; drop \"options\"";
            return false;
        }
        return true;
    }

    // Scenario-first resolution, with the mirror fields kept in sync
    // for reporting and the cache key (droop scenarios start at
    // their schedule's first operating point).
    if (haveScenario)
        out.sopt.scenario = scenario;
    if (voltageOverride)
        out.sopt.scenario.voltage = *voltageOverride;
    if (seedOverride)
        out.sopt.scenario.seed = *seedOverride;
    out.sopt.voltage = FaultModel::fromScenario(out.sopt.scenario)
                           ->voltageSchedule()
                           .front();
    out.sopt.seed = out.sopt.scenario.seed;

    // runEvaluationSweep() fatal()s on unknown names — validate
    // up-front so a typo comes back as an error frame instead of
    // taking the daemon down.
    if (!validateNames(out.sopt.workloads, workloadNames(),
                       "workload", err))
        return false;
    if (!validateNames(out.sopt.schemes, sweepSchemeNames(), "scheme",
                       err))
        return false;
    if (out.sopt.workloads.empty())
        out.sopt.workloads = workloadNames();
    if (out.sopt.schemes.empty())
        out.sopt.schemes = sweepSchemeNames();

    // Fixed server-side execution policy: one worker per job, no
    // file side effects (results travel on the wire, not to disk).
    out.sopt.jobs = 1;
    out.sopt.jsonPath.clear();
    out.sopt.trace.clear();
    out.sopt.timeseriesPath.clear();
    return true;
}

Json
stringArray(const std::vector<std::string> &names)
{
    Json arr = Json::array();
    for (const std::string &name : names)
        arr.push(Json::string(name));
    return arr;
}

/**
 * The canonical cache key: compact JSON of every result-affecting
 * knob (the bit-identity contract says jobs/priority/streaming do
 * not belong here) plus the build id, so results never survive a
 * rebuild. See SERVING.md, "Cache key".
 */
std::string
canonicalKeyFor(const SweepOptions &sopt)
{
    Json key = Json::object();
    key.set("experiment", Json::string("sweep"));
    key.set("scale", Json::number(sopt.scale));
    key.set("warmup", Json::number(std::uint64_t(sopt.warmupPasses)));
    key.set("voltage", Json::number(sopt.voltage));
    key.set("seed", Json::number(sopt.seed));
    key.set("stats_interval",
            Json::number(std::uint64_t(sopt.statsInterval)));
    key.set("scenario", sopt.scenario.toJson());
    key.set("workloads", stringArray(sopt.workloads));
    key.set("schemes", stringArray(sopt.schemes));
    key.set("build", Json::string(buildId()));
    return key.toString(0);
}

Json
resolvedOptionsJson(const SweepOptions &sopt)
{
    Json doc = Json::object();
    doc.set("scale", Json::number(sopt.scale));
    doc.set("warmup", Json::number(std::uint64_t(sopt.warmupPasses)));
    doc.set("voltage", Json::number(sopt.voltage));
    doc.set("seed", Json::number(sopt.seed));
    doc.set("stats_interval",
            Json::number(std::uint64_t(sopt.statsInterval)));
    doc.set("scenario", sopt.scenario.toJson());
    doc.set("workloads", stringArray(sopt.workloads));
    doc.set("schemes", stringArray(sopt.schemes));
    doc.set("build", Json::string(buildId()));
    return doc;
}

/**
 * The terminal frame for a computed/cached result is spliced
 * together as text so the "result" member is the *stored bytes* —
 * a cache hit is byte-identical to the original reply by
 * construction, never re-encoded.
 */
std::string
resultFrameText(std::uint64_t id, bool cached, const std::string &hash,
                const std::string &resultText,
                const std::string &spansText = "")
{
    std::string out = "{\"type\":\"result\",\"id\":";
    out += std::to_string(id);
    out += ",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"key\":\"";
    out += hash;
    out += "\",\"outcome\":\"done\",\"result\":";
    out += resultText;
    // Spans ride as a frame-level sibling, never inside "result":
    // the "result" member is the cached bytes and must stay
    // byte-identical between the cold run and every later hit.
    if (!spansText.empty()) {
        out += ",\"spans\":";
        out += spansText;
    }
    out += "}";
    return out;
}

double
sinceSeconds(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** kserved_job_stage_seconds label values, indexed like
 *  Server::mStageSeconds. */
constexpr const char *kStageNames[6] = {"decode",    "queue", "setup",
                                        "run",       "serialize",
                                        "reply"};

Json
terminalFrame(std::uint64_t id, const std::string &hash,
              const char *outcome, const std::string &error)
{
    Json doc = Json::object();
    doc.set("type", Json::string("result"));
    doc.set("id", Json::number(id));
    doc.set("cached", Json::boolean(false));
    doc.set("key", Json::string(hash));
    doc.set("outcome", Json::string(outcome));
    doc.set("error", Json::string(error));
    return doc;
}

} // namespace

Server::Server(ServerOptions options)
    : opt(std::move(options)),
      scheduler(opt.threads, opt.maxQueue, &registry),
      cache(opt.cacheEntries, &registry),
      warm(opt.warmStoreMb << 20, &registry),
      bootTime(std::chrono::steady_clock::now())
{
    registerServerMetrics();
}

Json
Server::JobSpans::toJson(double totalSeconds) const
{
    Json doc = Json::object();
    doc.set("decode_s", Json::number(decode));
    doc.set("queue_s", Json::number(queue));
    doc.set("setup_s", Json::number(setup));
    doc.set("run_s", Json::number(run));
    doc.set("serialize_s", Json::number(serialize));
    doc.set("reply_s", Json::number(reply));
    doc.set("total_s", Json::number(totalSeconds));
    return doc;
}

void
Server::registerServerMetrics()
{
    mConnections = &registry.counter("kserved_connections_total",
                                     "Client connections accepted");
    mFramesIn = &registry.counter("kserved_frames_received_total",
                                  "Protocol frames decoded from clients");
    mFramesOut = &registry.counter("kserved_frames_sent_total",
                                   "Protocol frames enqueued to clients");
    mProtocolErrors =
        &registry.counter("kserved_protocol_errors_total",
                          "Malformed frames and unknown frame types");
    mOutboxBytes =
        &registry.counter("kserved_outbox_bytes_total",
                          "Encoded reply bytes enqueued to outboxes");
    mHttpRequests =
        &registry.counter("kserved_http_requests_total",
                          "Requests served by the /metrics listener");
    mSlowJobs = &registry.counter(
        "kserved_slow_jobs_total",
        "Jobs that exceeded the slow-job threshold");
    mJobsDone = &registry.counter("kserved_jobs_total",
                                  "Finished jobs by terminal outcome",
                                  {{"outcome", "done"}});
    mJobsFailed = &registry.counter("kserved_jobs_total",
                                    "Finished jobs by terminal outcome",
                                    {{"outcome", "failed"}});
    mJobsCancelled =
        &registry.counter("kserved_jobs_total",
                          "Finished jobs by terminal outcome",
                          {{"outcome", "cancelled"}});
    mJobsRejected =
        &registry.counter("kserved_jobs_total",
                          "Finished jobs by terminal outcome",
                          {{"outcome", "rejected"}});
    mJobSeconds = &registry.histogram(
        "kserved_job_seconds",
        "End-to-end submit-to-finish latency (cache hits observe 0)");
    for (std::size_t k = 0; k < 6; ++k) {
        mStageSeconds[k] = &registry.histogram(
            "kserved_job_stage_seconds",
            "Per-stage job lifecycle latency",
            {{"stage", kStageNames[k]}});
    }
    registry.gaugeFn("kserved_connections_active",
                     "Client connections currently open", {}, [this] {
                         return double(activeConns.load(
                             std::memory_order_relaxed));
                     });
    registry.gaugeFn("kserved_uptime_seconds",
                     "Seconds since the daemon booted", {}, [this] {
                         return sinceSeconds(
                             bootTime,
                             std::chrono::steady_clock::now());
                     });
    registry.counterFn("ktrace_dropped_records_total",
                       "Trace records lost to ring-buffer wraparound "
                       "(process-wide)",
                       {}, [] { return traceDroppedRecordsTotal(); });
}

Server::~Server()
{
    stop();
    for (int fd : {wakeFds[0], wakeFds[1]})
        if (fd >= 0)
            ::close(fd);
}

bool
Server::start(std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = what + ": " + std::strerror(errno);
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        if (metricsFd >= 0) {
            ::close(metricsFd);
            metricsFd = -1;
        }
        return false;
    };

    if (::pipe(wakeFds) != 0)
        return fail("pipe");
    setNonBlocking(wakeFds[0]);
    setNonBlocking(wakeFds[1]);

    if (!opt.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err)
                *err = "socket path too long: " + opt.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        ::unlink(opt.socketPath.c_str()); // stale socket from a crash
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind " + opt.socketPath);
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opt.port);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind 127.0.0.1:" + std::to_string(opt.port));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return fail("getsockname");
        portBound = ntohs(bound.sin_port);
    }
    if (::listen(listenFd, 128) != 0)
        return fail("listen");
    setNonBlocking(listenFd);

    if (opt.metricsHttp) {
        metricsFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (metricsFd < 0)
            return fail("metrics socket");
        const int one = 1;
        ::setsockopt(metricsFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opt.metricsPort);
        if (::bind(metricsFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind metrics 127.0.0.1:" +
                        std::to_string(opt.metricsPort));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(metricsFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return fail("getsockname metrics");
        metricsPortBound = ntohs(bound.sin_port);
        if (::listen(metricsFd, 16) != 0)
            return fail("listen metrics");
        setNonBlocking(metricsFd);
    }

    started.store(true);
    ioThread = std::thread(&Server::ioLoop, this);
    return true;
}

void
Server::wake()
{
    if (wakeFds[1] >= 0) {
        const char c = 0;
        // Non-blocking; a full pipe already guarantees a wakeup.
        [[maybe_unused]] ssize_t r = ::write(wakeFds[1], &c, 1);
    }
}

void
Server::requestDrain()
{
    drainFlag.store(true, std::memory_order_relaxed);
    wake();
}

void
Server::waitDone()
{
    if (ioThread.joinable())
        ioThread.join();
}

void
Server::stop()
{
    requestDrain();
    waitDone();
}

void
Server::acceptClients(std::vector<std::shared_ptr<Connection>> &conns)
{
    while (true) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
        mConnections->inc();
        activeConns.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::closeConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    conn->closed.store(true, std::memory_order_relaxed);
    // Orphaned jobs would burn a worker computing a result nobody
    // will read; cancel them (queued ones go away immediately,
    // running ones wind down at the next sweep point).
    std::vector<std::uint64_t> orphans;
    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        for (const auto &[id, rec] : jobs)
            if (rec.conn == conn)
                orphans.push_back(id);
    }
    for (const std::uint64_t id : orphans)
        scheduler.cancel(id);
    ::close(conn->fd);
    conn->fd = -1;
    activeConns.fetch_sub(1, std::memory_order_relaxed);
}

void
Server::enqueueFrame(const std::shared_ptr<Connection> &conn,
                     const std::string &bytes)
{
    mFramesOut->inc();
    mOutboxBytes->inc(bytes.size());
    conn->enqueue(bytes);
}

void
Server::readFromClient(const std::shared_ptr<Connection> &conn)
{
    char buf[65536];
    while (true) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn->decoder.feed(buf, std::size_t(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error: drop the connection.
        closeConnection(conn);
        return;
    }

    Json frame;
    FrameDecoder::Status st;
    while ((st = conn->decoder.next(frame)) ==
           FrameDecoder::Status::Frame) {
        mFramesIn->inc();
        handleFrame(conn, frame);
    }
    if (st == FrameDecoder::Status::Error) {
        mProtocolErrors->inc();
        enqueueFrame(conn, encodeFrame(errorReply(
                               "protocol", conn->decoder.error())));
        std::lock_guard<std::mutex> lock(conn->mtx);
        conn->closeAfterFlush = true;
    }
}

void
Server::flushToClient(const std::shared_ptr<Connection> &conn)
{
    bool close = false;
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        while (!conn->outbuf.empty()) {
            const ssize_t n =
                ::send(conn->fd, conn->outbuf.data(),
                       conn->outbuf.size(), MSG_NOSIGNAL);
            if (n > 0) {
                conn->outbuf.erase(0, std::size_t(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            close = true; // peer vanished mid-write
            break;
        }
        if (conn->outbuf.empty() && conn->closeAfterFlush)
            close = true;
    }
    if (close)
        closeConnection(conn);
}

void
Server::ioLoop()
{
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<HttpConn> httpConns;
    bool draining = false;

    while (true) {
        if (!draining && drainFlag.load(std::memory_order_relaxed)) {
            draining = true;
            inform("kserved: draining (in-flight jobs finish, queued "
                   "jobs cancelled)");
            scheduler.beginDrain();
            // The metrics plane shuts with the intake: a scrape of a
            // half-drained daemon is not a state worth serving.
            for (HttpConn &hc : httpConns)
                ::close(hc.fd);
            httpConns.clear();
        }

        std::vector<pollfd> fds;
        fds.push_back({wakeFds[0], POLLIN, 0});
        if (!draining)
            fds.push_back({listenFd, POLLIN, 0});
        const std::size_t connBase = fds.size();
        for (const auto &conn : conns) {
            short events = POLLIN;
            if (conn->pendingOut())
                events |= POLLOUT;
            fds.push_back({conn->fd, events, 0});
        }
        const std::size_t httpBase = fds.size();
        const bool pollMetrics = !draining && metricsFd >= 0;
        if (pollMetrics)
            fds.push_back({metricsFd, POLLIN, 0});
        for (const HttpConn &hc : httpConns) {
            short events = POLLIN;
            if (!hc.out.empty())
                events |= POLLOUT;
            fds.push_back({hc.fd, events, 0});
        }

        // While draining poll with a timeout so in-flight completion
        // (signalled via the wake pipe, but belt and braces) is
        // always noticed.
        const int rv =
            ::poll(fds.data(), nfds_t(fds.size()), draining ? 50 : -1);
        if (rv < 0 && errno != EINTR) {
            warn("kserved: poll: %s", std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) {
            char sink[256];
            while (::read(wakeFds[0], sink, sizeof(sink)) > 0) {
            }
        }
        if (!draining && (fds[connBase - 1].revents & POLLIN))
            acceptClients(conns);

        for (std::size_t i = 0; i < conns.size(); ++i) {
            const auto &conn = conns[i];
            const short revents = fds[connBase + i].revents;
            if (conn->fd >= 0 &&
                (revents & (POLLIN | POLLERR | POLLHUP)))
                readFromClient(conn);
            if (conn->fd >= 0 &&
                ((revents & POLLOUT) || conn->pendingOut()))
                flushToClient(conn);
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const auto &c) {
                                       return c->fd < 0;
                                   }),
                    conns.end());

        if (pollMetrics) {
            if (fds[httpBase].revents & POLLIN)
                acceptMetricsClients(httpConns);
            const std::size_t hcBase = httpBase + 1;
            std::size_t live = 0;
            for (std::size_t i = 0; i < httpConns.size(); ++i) {
                // acceptMetricsClients may have grown the list past
                // what this poll round covered; new conns get 0
                // revents and are serviced next round.
                const short revents = hcBase + i < fds.size()
                                          ? fds[hcBase + i].revents
                                          : 0;
                if (serviceMetricsConn(httpConns[i], revents))
                    httpConns[live++] = std::move(httpConns[i]);
                else
                    ::close(httpConns[i].fd);
            }
            httpConns.resize(live);
        }

        if (draining && scheduler.idle()) {
            bool flushed = true;
            for (const auto &conn : conns)
                if (conn->pendingOut())
                    flushed = false;
            if (flushed)
                break;
        }
    }

    for (const auto &conn : conns)
        closeConnection(conn);
    for (const HttpConn &hc : httpConns)
        ::close(hc.fd);
    ::close(listenFd);
    listenFd = -1;
    if (metricsFd >= 0) {
        ::close(metricsFd);
        metricsFd = -1;
    }
    if (!opt.socketPath.empty())
        ::unlink(opt.socketPath.c_str());
    // Drained for good: release cached results and warm state in one
    // sweep each, so the byte/entry gauges read 0 afterwards instead
    // of drifting (evictions racing a per-entry teardown used to
    // leave the bytes gauge stuck at the raced entries' sizes).
    cache.clear();
    warm.clear();
}

void
Server::acceptMetricsClients(std::vector<HttpConn> &conns)
{
    while (true) {
        const int fd = ::accept(metricsFd, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        HttpConn hc;
        hc.fd = fd;
        conns.push_back(std::move(hc));
    }
}

bool
Server::serviceMetricsConn(HttpConn &conn, short revents)
{
    if (revents & (POLLERR | POLLHUP | POLLNVAL))
        return false;

    if (revents & POLLIN) {
        char buf[4096];
        while (true) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.in.append(buf, std::size_t(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF or hard error
        }
        if (conn.out.empty()) {
            if (conn.in.size() > 8192)
                return false; // not a plausible scrape request
            const auto headerEnd = conn.in.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                mHttpRequests->inc();
                const auto lineEnd = conn.in.find("\r\n");
                const std::string line = conn.in.substr(0, lineEnd);
                std::string status = "404 Not Found";
                std::string body = "not found\n";
                if (line.rfind("GET ", 0) != 0) {
                    status = "405 Method Not Allowed";
                    body = "only GET is supported\n";
                } else if (line.rfind("GET /metrics ", 0) == 0 ||
                           line.rfind("GET /metrics?", 0) == 0) {
                    status = "200 OK";
                    body = registry.prometheusText();
                }
                conn.out = "HTTP/1.0 " + status +
                           "\r\nContent-Type: text/plain; "
                           "version=0.0.4; charset=utf-8\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" +
                           body;
            }
        }
    }

    while (!conn.out.empty()) {
        const ssize_t n = ::send(conn.fd, conn.out.data(),
                                 conn.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, std::size_t(n));
            if (conn.out.empty())
                return false; // answered; close (Connection: close)
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const Json &req)
{
    const std::string &type = req.at("type").asString();

    if (type == "ping") {
        Json doc = Json::object();
        doc.set("type", Json::string("pong"));
        doc.set("build", Json::string(buildId()));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "stats") {
        Json doc = Json::object();
        doc.set("type", Json::string("stats_reply"));
        doc.set("stats", statsJson());
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "metrics") {
        // Both views come from the same registry walk a scrape
        // would take, so the frame and GET /metrics always agree.
        Json doc = Json::object();
        doc.set("type", Json::string("metrics_reply"));
        doc.set("build", Json::string(buildId()));
        doc.set("metrics", registry.toJson());
        doc.set("text", Json::string(registry.prometheusText()));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "drain") {
        requestDrain();
        Json doc = Json::object();
        doc.set("type", Json::string("draining"));
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "status" || type == "cancel") {
        if (!req.contains("id") || !req.at("id").isNumber() ||
            req.at("id").asDouble() < 0 ||
            req.at("id").asDouble() !=
                std::floor(req.at("id").asDouble())) {
            enqueueFrame(conn, encodeFrame(errorReply(
                                   "bad_request",
                                   "\"" + type +
                                       "\" needs a non-negative "
                                       "integer \"id\"")));
            return;
        }
        const std::uint64_t id =
            std::uint64_t(req.at("id").asDouble());
        Json doc = Json::object();
        if (type == "status") {
            bool known = false;
            const JobState st = scheduler.state(id, &known);
            doc.set("type", Json::string("status_reply"));
            doc.set("id", Json::number(id));
            doc.set("known", Json::boolean(known));
            if (known)
                doc.set("state", Json::string(jobStateName(st)));
        } else {
            doc.set("type", Json::string("cancel_reply"));
            doc.set("id", Json::number(id));
            doc.set("cancelled",
                    Json::boolean(scheduler.cancel(id)));
        }
        enqueueFrame(conn, encodeFrame(doc));
        return;
    }

    if (type == "submit") {
        handleSubmit(conn, req);
        return;
    }

    mProtocolErrors->inc();
    enqueueFrame(conn, encodeFrame(errorReply(
                           "unknown_type",
                           "unknown frame type \"" + type + "\"")));
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Json &req)
{
    auto spans = std::make_shared<JobSpans>();
    spans->submit = std::chrono::steady_clock::now();

    SubmitRequest sub;
    std::string verr;
    if (!parseSubmit(req, sub, verr)) {
        enqueueFrame(conn,
                     encodeFrame(errorReply("bad_request", verr)));
        return;
    }

    const std::string canonical = canonicalKeyFor(sub.sopt);
    spans->decode = sinceSeconds(spans->submit,
                                 std::chrono::steady_clock::now());
    const std::uint64_t id =
        nextJobId.fetch_add(1, std::memory_order_relaxed);

    // Record/replay jobs bypass the cache entirely — neither lookup
    // (a cached result has no recording / no verification verdict)
    // nor, later, insert (finishJob honours JobRecord::noCache).
    const bool bypassCache = sub.record || sub.replayRec != nullptr;
    std::string hash;
    std::string cachedText;
    const bool hit =
        !bypassCache && cache.lookup(canonical, cachedText, &hash);
    if (bypassCache)
        hash = ResultCache::hashKey(canonical);

    Json submitted = Json::object();
    submitted.set("type", Json::string("submitted"));
    submitted.set("id", Json::number(id));
    submitted.set("key", Json::string(hash));
    submitted.set("cached", Json::boolean(hit));
    enqueueFrame(conn, encodeFrame(submitted));

    if (hit) {
        // Hits keep the historical latency convention (0 s) and
        // observe only the decode stage — there is no queue/run/
        // serialize for a spliced reply.
        mJobSeconds->observe(0.0);
        mStageSeconds[0]->observe(spans->decode);
        spans->reply = sinceSeconds(
            spans->submit, std::chrono::steady_clock::now()) -
            spans->decode;
        const std::string spansText =
            spans->toJson(spans->decode + spans->reply).toString(0);
        enqueueFrame(conn,
                     encodeFramePayload(resultFrameText(
                         id, true, hash, cachedText, spansText)));
        return;
    }

    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        jobs.emplace(id, JobRecord{conn, canonical, hash,
                                   spans->submit, bypassCache,
                                   spans});
    }

    const SweepOptions sopt = sub.sopt;
    const bool stream = sub.stream;
    auto work = [this, sopt, id, conn, stream, spans,
                 record = sub.record,
                 replayRec =
                     sub.replayRec](const CancelToken &cancel)
        -> std::string {
        const auto workStart = std::chrono::steady_clock::now();
        spans->queue = sinceSeconds(spans->submit, workStart) -
                       spans->decode;
        SweepOptions ropt = sopt;
        ropt.cancel = &cancel;
        // Plain jobs share sampled fault populations through the
        // warm store: jobs that differ only in workload/scheme
        // subsets miss the result cache but describe the same die,
        // so it is synthesized once (single-flight) and adopted
        // bit-identically everywhere else. Record/replay jobs must
        // sample cold — adopting a population skips the sampler's
        // RNG draws, which recordings capture.
        if (!record && !replayRec && opt.warmStoreMb > 0) {
            ropt.warmFaultSource =
                [this, scenario = sopt.scenario](
                    const FaultModel &model, std::size_t numLines,
                    std::size_t lineBits) {
                    return warm.faultPopulation(
                        WarmStore::faultMapKey(scenario, numLines,
                                               lineBits),
                        [&model, numLines, lineBits] {
                            return model
                                .buildMap(numLines, lineBits)
                                ->population();
                        });
                };
        }
        if (stream) {
            // Periodic snapshots throttled to ~10/s per job; point
            // completions always go out.
            auto lastMs = std::make_shared<std::atomic<long long>>(
                -1000000);
            ropt.onProgress = [this, id, conn,
                               lastMs](const SweepProgress &p) {
                if (conn->closed.load(std::memory_order_relaxed))
                    return;
                if (!p.pointDone) {
                    const long long now = steadyMs();
                    if (now - lastMs->load() < 100)
                        return;
                    lastMs->store(now);
                }
                Json doc = Json::object();
                doc.set("type", Json::string("progress"));
                doc.set("id", Json::number(id));
                doc.set("point", Json::string(p.point));
                doc.set("tick", Json::number(std::uint64_t(p.tick)));
                doc.set("instructions",
                        Json::number(p.instructions));
                doc.set("point_done", Json::boolean(p.pointDone));
                doc.set("done",
                        Json::number(std::uint64_t(p.pointsDone)));
                doc.set("total",
                        Json::number(std::uint64_t(p.pointsTotal)));
                enqueueFrame(conn, encodeFrame(doc));
                wake();
            };
        }
        Json doc = Json::object();
        doc.set("bench", Json::string("kserved"));
        doc.set("options", resolvedOptionsJson(sopt));
        const auto preRun = std::chrono::steady_clock::now();
        spans->setup = sinceSeconds(workStart, preRun);
        std::chrono::steady_clock::time_point postRun;
        if (replayRec) {
            // Re-run from the recording and attach the verification
            // verdict; the sweep body itself is the replayed run's.
            const replay::SweepSession s =
                replay::replaySweep(*replayRec, &ropt);
            postRun = std::chrono::steady_clock::now();
            if (cancel.cancelled())
                return "";
            const Json body = sweepToJson(sopt, s.result);
            for (const auto &[key, value] : body.members())
                doc.set(key, value);
            Json rj = Json::object();
            rj.set("verified", Json::boolean(s.verified));
            rj.set("divergence", s.divergence.toJson());
            doc.set("replay", std::move(rj));
        } else if (record) {
            // Capture the run; the recording travels inline in the
            // result document (the daemon writes no files).
            const replay::SweepSession s = replay::recordSweep(ropt);
            postRun = std::chrono::steady_clock::now();
            if (cancel.cancelled())
                return "";
            const Json body = sweepToJson(sopt, s.result);
            for (const auto &[key, value] : body.members())
                doc.set(key, value);
            doc.set("recording", s.recording.toJson());
        } else {
            const SweepResult res = runEvaluationSweep(ropt);
            postRun = std::chrono::steady_clock::now();
            if (cancel.cancelled())
                return "";
            const Json body = sweepToJson(sopt, res);
            for (const auto &[key, value] : body.members())
                doc.set(key, value);
        }
        spans->run = sinceSeconds(preRun, postRun);
        std::string text = doc.toString(0);
        spans->serializeEnd = std::chrono::steady_clock::now();
        spans->serialize = sinceSeconds(postRun, spans->serializeEnd);
        return text;
    };

    std::string errCode;
    const bool admitted = scheduler.submit(
        id, sub.priority, std::move(work),
        [this](std::uint64_t jid, JobState st,
               const std::string &text, const std::string &jerr) {
            finishJob(jid, st, text, jerr);
        },
        &errCode);
    if (!admitted) {
        {
            std::lock_guard<std::mutex> lock(jobsMtx);
            jobs.erase(id);
        }
        mJobsRejected->inc();
        // The client already holds a "submitted" frame for this id;
        // the rejection is its terminal result (the backpressure
        // reply).
        enqueueFrame(conn, encodeFrame(terminalFrame(
                               id, hash, "rejected", errCode)));
    }
}

void
Server::finishJob(std::uint64_t id, JobState state,
                  const std::string &resultText,
                  const std::string &error)
{
    JobRecord rec;
    {
        std::lock_guard<std::mutex> lock(jobsMtx);
        const auto it = jobs.find(id);
        if (it == jobs.end())
            return;
        rec = it->second;
        jobs.erase(it);
    }
    const auto finish = std::chrono::steady_clock::now();
    const double seconds = sinceSeconds(rec.start, finish);
    mJobSeconds->observe(seconds);
    switch (state) {
      case JobState::Done: mJobsDone->inc(); break;
      case JobState::Failed: mJobsFailed->inc(); break;
      case JobState::Cancelled: mJobsCancelled->inc(); break;
      default: break;
    }

    std::string spansText;
    if (rec.spans && state == JobState::Done) {
        // Reply is the remainder of the submit-to-finish interval,
        // so the six stages tile it exactly.
        rec.spans->reply =
            sinceSeconds(rec.spans->serializeEnd, finish);
        const double stages[6] = {
            rec.spans->decode, rec.spans->queue, rec.spans->setup,
            rec.spans->run,    rec.spans->serialize,
            rec.spans->reply};
        for (std::size_t k = 0; k < 6; ++k)
            mStageSeconds[k]->observe(stages[k]);
        spansText = rec.spans->toJson(seconds).toString(0);
    }

    if (opt.slowJobSeconds > 0 && seconds >= opt.slowJobSeconds) {
        mSlowJobs->inc();
        const JobSpans empty{};
        const JobSpans &sp = rec.spans ? *rec.spans : empty;
        warn("kserved: slow job id=%llu outcome=%s total=%.3fs "
             "decode=%.3fs queue=%.3fs setup=%.3fs run=%.3fs "
             "serialize=%.3fs reply=%.3fs key=%s",
             static_cast<unsigned long long>(id), jobStateName(state),
             seconds, sp.decode, sp.queue, sp.setup, sp.run,
             sp.serialize, sp.reply, rec.hash.c_str());
    }

    if (state == JobState::Done) {
        if (!rec.noCache)
            cache.insert(rec.canonicalKey, resultText);
        enqueueFrame(rec.conn,
                     encodeFramePayload(resultFrameText(
                         id, false, rec.hash, resultText, spansText)));
    } else {
        enqueueFrame(rec.conn,
                     encodeFrame(terminalFrame(
                         id, rec.hash,
                         state == JobState::Failed ? "failed"
                                                   : "cancelled",
                         error)));
    }
    wake();
}

Json
Server::statsJson()
{
    Json doc = Json::object();
    doc.set("build", Json::string(buildId()));
    doc.set("draining",
            Json::boolean(drainFlag.load(std::memory_order_relaxed)));
    doc.set("scheduler", scheduler.stats().toJson());
    doc.set("cache", cache.stats().toJson());
    doc.set("warm_store", warm.stats().toJson());
    // Same members as ever, now read from the bounded histogram
    // (O(1) memory however long the daemon lives) and the registry
    // counters. Before the first job finishes the quantiles are
    // undefined: the members stay present (clients key on them) but
    // carry an explicit null, never NaN.
    Json lat = Json::object();
    const std::uint64_t latCount = mJobSeconds->count();
    lat.set("count", Json::number(latCount));
    if (latCount == 0) {
        lat.set("mean_s", Json::null());
        lat.set("p50_s", Json::null());
        lat.set("p99_s", Json::null());
    } else {
        lat.set("mean_s", Json::number(mJobSeconds->mean()));
        lat.set("p50_s", Json::number(mJobSeconds->quantile(0.5)));
        lat.set("p99_s", Json::number(mJobSeconds->quantile(0.99)));
    }
    doc.set("latency", lat);
    Json out = Json::object();
    out.set("cache_hits", Json::number(cache.stats().hits));
    out.set("done", Json::number(mJobsDone->value()));
    out.set("failed", Json::number(mJobsFailed->value()));
    out.set("cancelled", Json::number(mJobsCancelled->value()));
    out.set("rejected", Json::number(mJobsRejected->value()));
    out.set("protocol_errors",
            Json::number(mProtocolErrors->value()));
    out.set("connections", Json::number(mConnections->value()));
    doc.set("outcomes", out);
    return doc;
}

} // namespace killi::serve
