/**
 * @file
 * kserved: the experiment-serving daemon. A single poll()-driven I/O
 * thread owns the listening socket and every client connection;
 * experiment sweeps run on the JobScheduler's worker threads and
 * communicate back to the I/O thread only by appending encoded
 * frames to a connection's outbox and tickling the wake pipe.
 *
 * Request lifecycle (see SERVING.md for the full protocol grammar):
 * a "submit" frame is validated, canonicalized into a cache key, and
 * answered either straight from the content-addressed ResultCache
 * (submitted + result{cached:true}, byte-identical to the original
 * reply) or by scheduling a sweep job (submitted, then streamed
 * "progress" frames while it runs, then exactly one terminal
 * "result" frame with outcome done/failed/cancelled/rejected).
 *
 * Graceful drain — SIGINT/SIGTERM via requestDrain(), or a client
 * "drain" frame — stops accepting connections and submits, cancels
 * everything still queued (outcome "cancelled", error "draining"),
 * lets in-flight sweeps finish, flushes every outbox, and only then
 * exits the I/O loop (unlinking the Unix socket).
 */

#ifndef KILLI_SERVE_SERVER_HH
#define KILLI_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "metrics/metrics.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/warm_store.hh"

namespace killi::serve
{

struct ServerOptions
{
    /** Unix-domain socket path; preferred. Any stale file at the
     *  path is unlinked before binding. Empty selects TCP. */
    std::string socketPath;
    /** TCP port on 127.0.0.1 when socketPath is empty (0 binds an
     *  ephemeral port — read it back with boundPort()). */
    std::uint16_t port = 0;
    /** Scheduler worker threads (0 = all hardware threads). */
    unsigned threads = 0;
    /** Ready-queue bound; submits beyond it are rejected. */
    std::size_t maxQueue = 64;
    /** Result-cache capacity (entries). */
    std::size_t cacheEntries = 1024;
    /** Warm-state store bound (MiB of resident payload; fault
     *  populations shared across jobs of the same die). 0 disables
     *  warm sharing — every sweep point samples cold. */
    std::size_t warmStoreMb = 256;
    /** Serve plain-HTTP GET /metrics (Prometheus text) on
     *  127.0.0.1:metricsPort (0 binds an ephemeral port — read it
     *  back with metricsBoundPort()). */
    bool metricsHttp = false;
    std::uint16_t metricsPort = 0;
    /** Jobs slower than this get a structured warn() line with their
     *  stage breakdown and cache key; 0 disables. */
    double slowJobSeconds = 0.0;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);

    /** Drains and joins; safe if start() was never called. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and launch the I/O thread. Returns false and
     *  fills @p err on socket errors. Call at most once. */
    bool start(std::string *err);

    /**
     * Begin a graceful drain. Async-signal-safe (an atomic store
     * plus a write() to the wake pipe), so kserved calls this
     * straight from its SIGINT/SIGTERM handler. Idempotent.
     */
    void requestDrain();

    /** Block until the I/O loop has fully drained and exited. */
    void waitDone();

    /** requestDrain() + waitDone(), for tests and embedders. */
    void stop();

    /** Resolved TCP port (valid after start() in TCP mode). */
    std::uint16_t boundPort() const { return portBound; }

    /** Resolved /metrics HTTP port (valid after start() when
     *  metricsHttp is on). */
    std::uint16_t metricsBoundPort() const { return metricsPortBound; }

    const std::string &socketPath() const { return opt.socketPath; }

    /** The stats_reply body: scheduler depth, cache hit rate,
     *  per-outcome counters, and p50/p99 submit-to-finish latency. */
    Json statsJson();

    /** The operational metrics plane (also served via the `metrics`
     *  frame and GET /metrics). */
    metrics::MetricsRegistry &metrics() { return registry; }

  private:
    /**
     * One client connection. The I/O thread owns fd, decoder, and
     * all socket reads/writes; scheduler workers only append to the
     * outbox (under mtx) and never touch the socket, so a closed
     * connection simply drops late frames instead of racing on fd
     * reuse.
     */
    struct Connection
    {
        int fd = -1;
        FrameDecoder decoder;
        std::mutex mtx;
        std::string outbuf;
        bool closeAfterFlush = false;
        std::atomic<bool> closed{false};

        void
        enqueue(const std::string &bytes)
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (!closed.load(std::memory_order_relaxed))
                outbuf += bytes;
        }

        bool
        pendingOut()
        {
            std::lock_guard<std::mutex> lock(mtx);
            return !outbuf.empty();
        }
    };

    /**
     * Per-job lifecycle span durations (seconds). The six stages
     * tile the submit-to-reply interval: decode (frame parse +
     * validation + canonicalization, I/O thread), queue (admission
     * to execution start), setup (work-lambda preamble), run (the
     * sweep), serialize (result document to text), reply (result
     * delivery, computed as the remainder at finish time) — so the
     * stage sum equals the end-to-end latency by construction.
     * Written by the I/O thread (decode) before admission and by the
     * one worker thread that runs the job after; never concurrently.
     */
    struct JobSpans
    {
        std::chrono::steady_clock::time_point submit;
        /** End of the serialize stage (reply = finish − this). */
        std::chrono::steady_clock::time_point serializeEnd;
        double decode = 0;
        double queue = 0;
        double setup = 0;
        double run = 0;
        double serialize = 0;
        double reply = 0;

        /** {"decode_s":..., ..., "total_s":...} */
        Json toJson(double totalSeconds) const;
    };

    /** Book-keeping for one admitted (non-cached) job. */
    struct JobRecord
    {
        std::shared_ptr<Connection> conn;
        std::string canonicalKey;
        std::string hash;
        std::chrono::steady_clock::time_point start;
        /** Record/replay jobs bypass the result cache entirely: a
         *  recorded result carries its (run-specific) recording and a
         *  replayed one its verification verdict, neither of which a
         *  plain submit of the same point should ever be served. */
        bool noCache = false;
        std::shared_ptr<JobSpans> spans;
    };

    /** One /metrics HTTP client (I/O-thread-only; no locking). */
    struct HttpConn
    {
        int fd = -1;
        std::string in;
        std::string out;
    };

    void ioLoop();
    void wake();
    void acceptClients(std::vector<std::shared_ptr<Connection>> &conns);
    void readFromClient(const std::shared_ptr<Connection> &conn);
    void flushToClient(const std::shared_ptr<Connection> &conn);
    void closeConnection(const std::shared_ptr<Connection> &conn);
    /** Counted outbox append: every protocol frame leaves through
     *  here so frames-sent/outbox-bytes stay exact. */
    void enqueueFrame(const std::shared_ptr<Connection> &conn,
                      const std::string &bytes);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const Json &req);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &req);
    void finishJob(std::uint64_t id, JobState state,
                   const std::string &resultText,
                   const std::string &error);
    void acceptMetricsClients(std::vector<HttpConn> &conns);
    /** Read/answer one /metrics client; returns false once the
     *  connection should be dropped. */
    bool serviceMetricsConn(HttpConn &conn, short revents);
    void registerServerMetrics();

    ServerOptions opt;
    /** Declared before scheduler/cache/warm: all three register
     *  callback instruments into it at construction. */
    metrics::MetricsRegistry registry;
    JobScheduler scheduler;
    ResultCache cache;
    WarmStore warm;

    std::thread ioThread;
    int listenFd = -1;
    int metricsFd = -1;
    int wakeFds[2] = {-1, -1};
    std::uint16_t portBound = 0;
    std::uint16_t metricsPortBound = 0;
    std::atomic<bool> started{false};
    std::atomic<bool> drainFlag{false};

    std::mutex jobsMtx;
    std::map<std::uint64_t, JobRecord> jobs;
    std::atomic<std::uint64_t> nextJobId{1};

    std::chrono::steady_clock::time_point bootTime;
    std::atomic<std::int64_t> activeConns{0};

    // Server-plane instruments (registered in registerServerMetrics;
    // never null after construction).
    metrics::Counter *mConnections = nullptr;
    metrics::Counter *mFramesIn = nullptr;
    metrics::Counter *mFramesOut = nullptr;
    metrics::Counter *mProtocolErrors = nullptr;
    metrics::Counter *mOutboxBytes = nullptr;
    metrics::Counter *mHttpRequests = nullptr;
    metrics::Counter *mSlowJobs = nullptr;
    metrics::Counter *mJobsDone = nullptr;
    metrics::Counter *mJobsFailed = nullptr;
    metrics::Counter *mJobsCancelled = nullptr;
    metrics::Counter *mJobsRejected = nullptr;
    /** End-to-end submit-to-finish latency (cache hits observe 0 s,
     *  same convention as the stats_reply ever had). */
    metrics::Histogram *mJobSeconds = nullptr;
    /** kserved_job_stage_seconds{stage=...}, indexed like
     *  kStageNames. */
    metrics::Histogram *mStageSeconds[6] = {};
};

} // namespace killi::serve

#endif // KILLI_SERVE_SERVER_HH
