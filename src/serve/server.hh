/**
 * @file
 * kserved: the experiment-serving daemon. A small pool of epoll
 * reactor threads (ServerOptions::ioThreads) owns the listening
 * socket — shared via EPOLLEXCLUSIVE so the kernel wakes exactly one
 * reactor per pending accept — and every client connection is pinned
 * to the reactor that accepted it. Experiment sweeps run on the
 * JobScheduler's worker threads and communicate back to the owning
 * reactor only by appending encoded frames to a connection's chunked
 * outbox and tickling that reactor's wake pipe; outboxes drain with
 * writev() so queued frames leave in one syscall without being
 * recopied into a flat buffer.
 *
 * Request lifecycle (see SERVING.md for the full protocol grammar):
 * a "submit" frame is validated, canonicalized into a cache key, and
 * answered either straight from the content-addressed ResultCache
 * (submitted + result{cached:true}, byte-identical to the original
 * reply) or by scheduling a sweep job (submitted, then streamed
 * "progress" frames while it runs, then exactly one terminal
 * "result" frame with outcome done/failed/cancelled/rejected).
 * A "fetch" frame addresses the cache directly by content hash —
 * the peer-transfer path of the fleet fabric (src/fleet).
 *
 * Admission control: beyond the scheduler's bounded queue
 * (queue_full), maxConns bounds concurrent connections — excess
 * accepts are answered with an "overloaded" error frame and closed,
 * so a barrage degrades into explicit backpressure instead of fd
 * exhaustion.
 *
 * Graceful drain — SIGINT/SIGTERM via requestDrain(), or a client
 * "drain" frame — stops accepting connections and submits, cancels
 * everything still queued (outcome "cancelled", error "draining"),
 * lets in-flight sweeps finish, flushes every outbox, and only then
 * exits the reactor loops (unlinking the Unix socket).
 */

#ifndef KILLI_SERVE_SERVER_HH
#define KILLI_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "metrics/metrics.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/submit.hh"
#include "serve/warm_store.hh"

namespace killi::serve
{

/** Progress sink a fleet runner forwards worker progress into. */
using FleetProgressFn = std::function<void(const SweepProgress &)>;

/**
 * Pluggable campaign backend: when set, plain (non-record/replay)
 * submits run through this instead of a local runEvaluationSweep().
 * Must return the complete result document (bench/options/sweep/
 * workloads/campaign) and may fill @p attribution with a per-shard
 * worker/origin breakdown that rides the terminal result frame as
 * the "fleet" sibling. Throw std::runtime_error on unrecoverable
 * failure (becomes outcome "failed"); return promptly once
 * @p cancel trips (becomes outcome "cancelled").
 */
using FleetRunner = std::function<Json(
    std::uint64_t id, const SubmitRequest &req,
    const CancelToken &cancel, const FleetProgressFn &progress,
    Json *attribution)>;

struct ServerOptions
{
    /** Unix-domain socket path; preferred. Any stale file at the
     *  path is unlinked before binding. Empty selects TCP. */
    std::string socketPath;
    /** TCP port on 127.0.0.1 when socketPath is empty (0 binds an
     *  ephemeral port — read it back with boundPort()). */
    std::uint16_t port = 0;
    /** Scheduler worker threads (0 = all hardware threads). */
    unsigned threads = 0;
    /** Reactor (epoll I/O) threads; connections shard across them
     *  at accept time. Clamped to at least 1. */
    unsigned ioThreads = 1;
    /** Ready-queue bound; submits beyond it are rejected. */
    std::size_t maxQueue = 64;
    /** Concurrent-connection bound; accepts beyond it are answered
     *  with an "overloaded" error frame and closed. 0 = unbounded. */
    std::size_t maxConns = 0;
    /** Result-cache capacity (entries). */
    std::size_t cacheEntries = 1024;
    /** Warm-state store bound (MiB of resident payload; fault
     *  populations shared across jobs of the same die). 0 disables
     *  warm sharing — every sweep point samples cold. */
    std::size_t warmStoreMb = 256;
    /** Serve plain-HTTP GET /metrics (Prometheus text) on
     *  127.0.0.1:metricsPort (0 binds an ephemeral port — read it
     *  back with metricsBoundPort()). */
    bool metricsHttp = false;
    std::uint16_t metricsPort = 0;
    /** Jobs slower than this get a structured warn() line with their
     *  stage breakdown and cache key; 0 disables. */
    double slowJobSeconds = 0.0;
    /**
     * Testing/benchmark hook: every admitted job sleeps this long
     * (cancellably) before running. Injects deterministic straggler
     * behaviour for the fleet hedging tests and emulates a fixed
     * service time for kload scaling runs on core-starved hosts.
     */
    double debugJobDelaySeconds = 0.0;
    /** Fleet backend; see FleetRunner. Unset = run sweeps locally. */
    FleetRunner fleetRunner;
    /** Optional per-job annotation attached to status_reply as the
     *  "fleet" member (null return = omit). */
    std::function<Json(std::uint64_t id)> statusAnnotator;
    /** Optional extra stats block attached to stats_reply as the
     *  "fleet" member. */
    std::function<Json()> statsExtra;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);

    /** Drains and joins; safe if start() was never called. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and launch the reactor threads. Returns false
     *  and fills @p err on socket errors. Call at most once. */
    bool start(std::string *err);

    /**
     * Begin a graceful drain. Async-signal-safe (an atomic store
     * plus a write() to each reactor's wake pipe), so kserved calls
     * this straight from its SIGINT/SIGTERM handler. Idempotent.
     */
    void requestDrain();

    /** Block until every reactor has fully drained and exited. */
    void waitDone();

    /** requestDrain() + waitDone(), for tests and embedders. */
    void stop();

    /** Resolved TCP port (valid after start() in TCP mode). */
    std::uint16_t boundPort() const { return portBound; }

    /** Resolved /metrics HTTP port (valid after start() when
     *  metricsHttp is on). */
    std::uint16_t metricsBoundPort() const { return metricsPortBound; }

    const std::string &socketPath() const { return opt.socketPath; }

    /** The stats_reply body: scheduler depth, cache hit rate,
     *  per-outcome counters, and p50/p99 submit-to-finish latency. */
    Json statsJson();

    /** The operational metrics plane (also served via the `metrics`
     *  frame and GET /metrics). */
    metrics::MetricsRegistry &metrics() { return registry; }

    /**
     * Install the fleet backend after construction but before
     * start(). Exists because the coordinator registers its
     * kfleet_* families in this server's registry — which only
     * exists once the Server does — so kfleetd builds the Server
     * first, the Coordinator second, and wires the two here.
     */
    void
    setFleetBackend(FleetRunner runner,
                    std::function<Json(std::uint64_t)> status,
                    std::function<Json()> stats)
    {
        opt.fleetRunner = std::move(runner);
        opt.statusAnnotator = std::move(status);
        opt.statsExtra = std::move(stats);
    }

  private:
    /**
     * One client connection, pinned to the reactor that accepted it.
     * That reactor owns fd, decoder, and all socket reads/writes;
     * scheduler workers only append to the outbox (under mtx) and
     * never touch the socket, so a closed connection simply drops
     * late frames instead of racing on fd reuse. The outbox is a
     * deque of encoded frames drained with writev() — frames are
     * moved in and gathered out, never concatenated.
     */
    struct Connection
    {
        int fd = -1;
        FrameDecoder decoder;
        std::mutex mtx;
        /** Encoded frames awaiting the socket; front is partially
         *  written up to outOff. */
        std::deque<std::string> outq;
        std::size_t outOff = 0;
        bool closeAfterFlush = false;
        std::atomic<bool> closed{false};
        /** Reactor that owns this connection (set at accept). */
        std::atomic<int> reactorIdx{-1};
        /** Collapses redundant worker wakeups: set by the first
         *  enqueuer, cleared by the reactor when it services the
         *  pending list. */
        std::atomic<bool> notified{false};
        /** EPOLLOUT currently armed (owning reactor only). */
        bool outArmed = false;

        void
        enqueue(std::string bytes)
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (!closed.load(std::memory_order_relaxed))
                outq.push_back(std::move(bytes));
        }

        bool
        pendingOut()
        {
            std::lock_guard<std::mutex> lock(mtx);
            return !outq.empty();
        }
    };

    /**
     * Per-job lifecycle span durations (seconds). The six stages
     * tile the submit-to-reply interval: decode (frame parse +
     * validation + canonicalization, I/O thread), queue (admission
     * to execution start), setup (work-lambda preamble), run (the
     * sweep), serialize (result document to text), reply (result
     * delivery, computed as the remainder at finish time) — so the
     * stage sum equals the end-to-end latency by construction.
     * Written by the reactor (decode) before admission and by the
     * one worker thread that runs the job after; never concurrently.
     */
    struct JobSpans
    {
        std::chrono::steady_clock::time_point submit;
        /** End of the serialize stage (reply = finish − this). */
        std::chrono::steady_clock::time_point serializeEnd;
        double decode = 0;
        double queue = 0;
        double setup = 0;
        double run = 0;
        double serialize = 0;
        double reply = 0;

        /** {"decode_s":..., ..., "total_s":...} */
        Json toJson(double totalSeconds) const;
    };

    /** Book-keeping for one admitted (non-cached) job. */
    struct JobRecord
    {
        std::shared_ptr<Connection> conn;
        std::string canonicalKey;
        std::string hash;
        std::chrono::steady_clock::time_point start;
        /** Record/replay jobs bypass the result cache entirely: a
         *  recorded result carries its (run-specific) recording and a
         *  replayed one its verification verdict, neither of which a
         *  plain submit of the same point should ever be served. */
        bool noCache = false;
        std::shared_ptr<JobSpans> spans;
        /** Fleet attribution filled by the runner; rides the
         *  terminal frame as the "fleet" sibling when non-null. */
        std::shared_ptr<Json> fleetInfo;
    };

    /** One /metrics HTTP client (owning-reactor-only; no locking). */
    struct HttpConn
    {
        int fd = -1;
        std::string in;
        std::string out;
        bool outArmed = false;
    };

    /**
     * One epoll loop. Owns its wake pipe, its share of the client
     * connections (keyed by fd), and — reactor 0 only — the /metrics
     * HTTP plane. All reactors register the shared listen fd with
     * EPOLLEXCLUSIVE.
     */
    struct Reactor
    {
        std::size_t idx = 0;
        int epollFd = -1;
        int wakeFd[2] = {-1, -1};
        std::thread thread;
        std::unordered_map<int, std::shared_ptr<Connection>> connByFd;
        std::unordered_map<int, HttpConn> httpByFd;
        /** Connections with freshly enqueued frames, handed over by
         *  scheduler workers (under pendingMtx). */
        std::mutex pendingMtx;
        std::vector<std::shared_ptr<Connection>> pending;
        bool acceptArmed = false;
        bool metricsArmed = false;
        bool draining = false;
        metrics::Counter *mAccepted = nullptr;
        metrics::Counter *mWakeups = nullptr;
    };

    void reactorLoop(Reactor &r);
    /** Write one byte into @p r's wake pipe. */
    static void wakeReactor(const Reactor &r);
    /** Hand @p conn to its owning reactor for flushing (worker
     *  side of the outbox). Deduplicated via Connection::notified. */
    void notifyConn(const std::shared_ptr<Connection> &conn);
    void acceptClients(Reactor &r);
    void readFromClient(Reactor &r,
                        const std::shared_ptr<Connection> &conn);
    void flushToClient(Reactor &r,
                       const std::shared_ptr<Connection> &conn);
    /** flushToClient + (dis)arm EPOLLOUT to match what is left. */
    void flushAndArm(Reactor &r,
                     const std::shared_ptr<Connection> &conn);
    void closeConnection(Reactor &r,
                         const std::shared_ptr<Connection> &conn);
    /** Counted outbox append: every protocol frame leaves through
     *  here so frames-sent/outbox-bytes stay exact. */
    void enqueueFrame(const std::shared_ptr<Connection> &conn,
                      std::string bytes);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const Json &req);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &req);
    void finishJob(std::uint64_t id, JobState state,
                   const std::string &resultText,
                   const std::string &error);
    void acceptMetricsClients(Reactor &r);
    /** Read/answer one /metrics client; returns false once the
     *  connection should be dropped. */
    bool serviceMetricsConn(HttpConn &conn, bool readable, bool error);
    void registerServerMetrics();
    /** Post-join teardown: listen/metrics/reactor fds, socket file,
     *  cache + warm store. Runs exactly once. */
    void cleanupAfterJoin();

    ServerOptions opt;
    /** Declared before scheduler/cache/warm: all three register
     *  callback instruments into it at construction. */
    metrics::MetricsRegistry registry;
    JobScheduler scheduler;
    ResultCache cache;
    WarmStore warm;

    std::vector<std::unique_ptr<Reactor>> reactors;
    int listenFd = -1;
    int metricsFd = -1;
    std::uint16_t portBound = 0;
    std::uint16_t metricsPortBound = 0;
    std::atomic<bool> started{false};
    std::atomic<bool> drainFlag{false};
    std::atomic<bool> drainAnnounced{false};
    std::atomic<bool> drainBegun{false};
    std::atomic<bool> cleanedUp{false};

    std::mutex jobsMtx;
    std::map<std::uint64_t, JobRecord> jobs;
    std::atomic<std::uint64_t> nextJobId{1};

    std::chrono::steady_clock::time_point bootTime;
    std::atomic<std::int64_t> activeConns{0};

    // Server-plane instruments (registered in registerServerMetrics;
    // never null after construction).
    metrics::Counter *mConnections = nullptr;
    metrics::Counter *mConnsRejected = nullptr;
    metrics::Counter *mFramesIn = nullptr;
    metrics::Counter *mFramesOut = nullptr;
    metrics::Counter *mProtocolErrors = nullptr;
    metrics::Counter *mOutboxBytes = nullptr;
    metrics::Counter *mHttpRequests = nullptr;
    metrics::Counter *mFetchHits = nullptr;
    metrics::Counter *mFetchMisses = nullptr;
    metrics::Counter *mSlowJobs = nullptr;
    metrics::Counter *mJobsDone = nullptr;
    metrics::Counter *mJobsFailed = nullptr;
    metrics::Counter *mJobsCancelled = nullptr;
    metrics::Counter *mJobsRejected = nullptr;
    /** End-to-end submit-to-finish latency (cache hits observe 0 s,
     *  same convention as the stats_reply ever had). */
    metrics::Histogram *mJobSeconds = nullptr;
    /** kserved_job_stage_seconds{stage=...}, indexed like
     *  kStageNames. */
    metrics::Histogram *mStageSeconds[6] = {};
};

} // namespace killi::serve

#endif // KILLI_SERVE_SERVER_HH
