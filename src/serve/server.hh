/**
 * @file
 * kserved: the experiment-serving daemon. A single poll()-driven I/O
 * thread owns the listening socket and every client connection;
 * experiment sweeps run on the JobScheduler's worker threads and
 * communicate back to the I/O thread only by appending encoded
 * frames to a connection's outbox and tickling the wake pipe.
 *
 * Request lifecycle (see SERVING.md for the full protocol grammar):
 * a "submit" frame is validated, canonicalized into a cache key, and
 * answered either straight from the content-addressed ResultCache
 * (submitted + result{cached:true}, byte-identical to the original
 * reply) or by scheduling a sweep job (submitted, then streamed
 * "progress" frames while it runs, then exactly one terminal
 * "result" frame with outcome done/failed/cancelled/rejected).
 *
 * Graceful drain — SIGINT/SIGTERM via requestDrain(), or a client
 * "drain" frame — stops accepting connections and submits, cancels
 * everything still queued (outcome "cancelled", error "draining"),
 * lets in-flight sweeps finish, flushes every outbox, and only then
 * exits the I/O loop (unlinking the Unix socket).
 */

#ifndef KILLI_SERVE_SERVER_HH
#define KILLI_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"

namespace killi::serve
{

struct ServerOptions
{
    /** Unix-domain socket path; preferred. Any stale file at the
     *  path is unlinked before binding. Empty selects TCP. */
    std::string socketPath;
    /** TCP port on 127.0.0.1 when socketPath is empty (0 binds an
     *  ephemeral port — read it back with boundPort()). */
    std::uint16_t port = 0;
    /** Scheduler worker threads (0 = all hardware threads). */
    unsigned threads = 0;
    /** Ready-queue bound; submits beyond it are rejected. */
    std::size_t maxQueue = 64;
    /** Result-cache capacity (entries). */
    std::size_t cacheEntries = 1024;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);

    /** Drains and joins; safe if start() was never called. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and launch the I/O thread. Returns false and
     *  fills @p err on socket errors. Call at most once. */
    bool start(std::string *err);

    /**
     * Begin a graceful drain. Async-signal-safe (an atomic store
     * plus a write() to the wake pipe), so kserved calls this
     * straight from its SIGINT/SIGTERM handler. Idempotent.
     */
    void requestDrain();

    /** Block until the I/O loop has fully drained and exited. */
    void waitDone();

    /** requestDrain() + waitDone(), for tests and embedders. */
    void stop();

    /** Resolved TCP port (valid after start() in TCP mode). */
    std::uint16_t boundPort() const { return portBound; }

    const std::string &socketPath() const { return opt.socketPath; }

    /** The stats_reply body: scheduler depth, cache hit rate,
     *  per-outcome counters, and p50/p99 submit-to-finish latency. */
    Json statsJson();

  private:
    /**
     * One client connection. The I/O thread owns fd, decoder, and
     * all socket reads/writes; scheduler workers only append to the
     * outbox (under mtx) and never touch the socket, so a closed
     * connection simply drops late frames instead of racing on fd
     * reuse.
     */
    struct Connection
    {
        int fd = -1;
        FrameDecoder decoder;
        std::mutex mtx;
        std::string outbuf;
        bool closeAfterFlush = false;
        std::atomic<bool> closed{false};

        void
        enqueue(const std::string &bytes)
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (!closed.load(std::memory_order_relaxed))
                outbuf += bytes;
        }

        bool
        pendingOut()
        {
            std::lock_guard<std::mutex> lock(mtx);
            return !outbuf.empty();
        }
    };

    /** Book-keeping for one admitted (non-cached) job. */
    struct JobRecord
    {
        std::shared_ptr<Connection> conn;
        std::string canonicalKey;
        std::string hash;
        std::chrono::steady_clock::time_point start;
        /** Record/replay jobs bypass the result cache entirely: a
         *  recorded result carries its (run-specific) recording and a
         *  replayed one its verification verdict, neither of which a
         *  plain submit of the same point should ever be served. */
        bool noCache = false;
    };

    void ioLoop();
    void wake();
    void acceptClients(std::vector<std::shared_ptr<Connection>> &conns);
    void readFromClient(const std::shared_ptr<Connection> &conn);
    void flushToClient(const std::shared_ptr<Connection> &conn);
    void closeConnection(const std::shared_ptr<Connection> &conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const Json &req);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &req);
    void finishJob(std::uint64_t id, JobState state,
                   const std::string &resultText,
                   const std::string &error);

    ServerOptions opt;
    JobScheduler scheduler;
    ResultCache cache;

    std::thread ioThread;
    int listenFd = -1;
    int wakeFds[2] = {-1, -1};
    std::uint16_t portBound = 0;
    std::atomic<bool> started{false};
    std::atomic<bool> drainFlag{false};

    std::mutex jobsMtx;
    std::map<std::uint64_t, JobRecord> jobs;
    std::atomic<std::uint64_t> nextJobId{1};

    std::mutex statsMtx;
    Distribution latency; //!< submit-to-finish seconds
    std::uint64_t cacheHitCount = 0;
    std::uint64_t doneCount = 0;
    std::uint64_t failedCount = 0;
    std::uint64_t cancelledCount = 0;
    std::uint64_t rejectedCount = 0;
    std::uint64_t protocolErrorCount = 0;
    std::uint64_t connectionCount = 0;
};

} // namespace killi::serve

#endif // KILLI_SERVE_SERVER_HH
