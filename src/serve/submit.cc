#include "serve/submit.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "common/build_info.hh"
#include "fault/fault_model.hh"
#include "gpu/workload.hh"
#include "replay/session.hh"

namespace killi::serve
{

namespace
{

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

/** Extract a numeric member constrained to [lo, hi]. */
bool
numberIn(const Json &value, const char *key, double lo, double hi,
         double &out, std::string &err)
{
    if (!value.isNumber()) {
        err = std::string("\"") + key + "\" must be a number";
        return false;
    }
    const double d = value.asDouble();
    if (!(d >= lo && d <= hi)) {
        std::ostringstream os;
        os << "\"" << key << "\" must be in [" << lo << ", " << hi
           << "]";
        err = os.str();
        return false;
    }
    out = d;
    return true;
}

/** Extract a non-negative integral member bounded by @p hi. */
bool
uintIn(const Json &value, const char *key, std::uint64_t hi,
       std::uint64_t &out, std::string &err)
{
    if (!value.isNumber()) {
        err = std::string("\"") + key + "\" must be a number";
        return false;
    }
    const double d = value.asDouble();
    if (!(d >= 0) || d != std::floor(d) || d > double(hi)) {
        std::ostringstream os;
        os << "\"" << key << "\" must be an integer in [0, " << hi
           << "]";
        err = os.str();
        return false;
    }
    out = std::uint64_t(d);
    return true;
}

/** Accept either a comma-separated string or an array of strings. */
bool
nameList(const Json &value, const char *key,
         std::vector<std::string> &out, std::string &err)
{
    if (value.kind() == Json::Kind::String) {
        out = splitList(value.asString());
        return true;
    }
    if (value.kind() == Json::Kind::Array) {
        out.clear();
        for (std::size_t i = 0; i < value.size(); ++i) {
            if (value.at(i).kind() != Json::Kind::String) {
                err = std::string("\"") + key +
                      "\" array members must be strings";
                return false;
            }
            out.push_back(value.at(i).asString());
        }
        return true;
    }
    err = std::string("\"") + key +
          "\" must be a comma-separated string or an array of "
          "strings";
    return false;
}

bool
validateNames(const std::vector<std::string> &got,
              const std::vector<std::string> &known, const char *what,
              std::string &err)
{
    for (const std::string &name : got) {
        if (std::find(known.begin(), known.end(), name) ==
            known.end()) {
            std::string all;
            for (const std::string &k : known)
                all += (all.empty() ? "" : ", ") + k;
            err = std::string("unknown ") + what + " '" + name +
                  "' (known: " + all + ")";
            return false;
        }
    }
    return true;
}

Json
stringArray(const std::vector<std::string> &names)
{
    Json arr = Json::array();
    for (const std::string &name : names)
        arr.push(Json::string(name));
    return arr;
}

} // namespace

bool
parseSubmit(const Json &req, SubmitRequest &out, std::string &err)
{
    out.sopt = SweepOptions{};
    out.sopt.warmupPasses = 2;
    // Collected first, resolved after the loop: the scenario and the
    // voltage/seed overrides may arrive in any member order, but
    // resolution must be deterministic (scenario first, overrides on
    // top — the same rule as sweepOptions()).
    bool haveScenario = false;
    bool haveOptions = false;
    ScenarioSpec scenario;
    std::optional<double> voltageOverride;
    std::optional<std::uint64_t> seedOverride;
    for (const auto &[key, value] : req.members()) {
        if (key == "type")
            continue;
        if (key == "record") {
            if (value.kind() != Json::Kind::Bool) {
                err = "\"record\" must be a boolean";
                return false;
            }
            out.record = value.asBool();
        } else if (key == "replay") {
            if (value.kind() != Json::Kind::Object) {
                err = "\"replay\" must be an inline "
                      "killi-recording-v1 object";
                return false;
            }
            auto rec = std::make_shared<replay::Recording>();
            std::string rerr;
            if (!replay::Recording::tryFromJson(value, *rec, &rerr)) {
                err = "\"replay\": " + rerr;
                return false;
            }
            if (!replay::trySweepOptionsFromMeta(*rec, out.sopt,
                                                 &rerr)) {
                err = "\"replay\": " + rerr;
                return false;
            }
            out.replayRec = std::move(rec);
        } else if (key == "priority") {
            double d = 0;
            if (!numberIn(value, "priority", -1000, 1000, d, err))
                return false;
            out.priority = int(d);
        } else if (key == "stream") {
            if (value.kind() != Json::Kind::Bool) {
                err = "\"stream\" must be a boolean";
                return false;
            }
            out.stream = value.asBool();
        } else if (key == "options") {
            if (value.kind() != Json::Kind::Object) {
                err = "\"options\" must be an object";
                return false;
            }
            haveOptions = true;
            for (const auto &[opt, v] : value.members()) {
                std::uint64_t u = 0;
                if (opt == "scale") {
                    if (!numberIn(v, "scale", 0.001, 1000.0,
                                  out.sopt.scale, err))
                        return false;
                } else if (opt == "warmup") {
                    if (!uintIn(v, "warmup", 16, u, err))
                        return false;
                    out.sopt.warmupPasses = unsigned(u);
                } else if (opt == "voltage") {
                    double d = 0.625;
                    if (!numberIn(v, "voltage", 0.5, 1.0, d, err))
                        return false;
                    voltageOverride = d;
                } else if (opt == "seed") {
                    if (!uintIn(v, "seed",
                                std::uint64_t(1) << 53, u, err))
                        return false;
                    seedOverride = u;
                } else if (opt == "scenario") {
                    // Object or inline-JSON string; file paths are a
                    // client-side concern (kcli resolves them before
                    // submitting).
                    std::string specErr;
                    if (v.kind() == Json::Kind::Object) {
                        if (!ScenarioSpec::tryFromJson(v, scenario,
                                                       &specErr)) {
                            err = specErr;
                            return false;
                        }
                    } else if (v.kind() == Json::Kind::String &&
                               !v.asString().empty() &&
                               v.asString().front() == '{') {
                        if (!ScenarioSpec::tryFromString(
                                v.asString(), scenario, &specErr)) {
                            err = specErr;
                            return false;
                        }
                    } else {
                        err = "\"scenario\" must be a scenario object "
                              "or an inline-JSON string (resolve file "
                              "paths client-side)";
                        return false;
                    }
                    haveScenario = true;
                } else if (opt == "stats_interval") {
                    if (!uintIn(v, "stats_interval",
                                std::uint64_t(1) << 53, u, err))
                        return false;
                    out.sopt.statsInterval = Cycle(u);
                } else if (opt == "retries") {
                    if (!uintIn(v, "retries", 10, u, err))
                        return false;
                    out.sopt.retries = unsigned(u);
                } else if (opt == "workloads") {
                    if (!nameList(v, "workloads",
                                  out.sopt.workloads, err))
                        return false;
                } else if (opt == "schemes") {
                    if (!nameList(v, "schemes", out.sopt.schemes,
                                  err))
                        return false;
                } else {
                    err = "unknown option \"" + opt + "\"";
                    return false;
                }
            }
        } else {
            err = "unknown submit member \"" + key + "\"";
            return false;
        }
    }

    // A replay job re-derives everything from the recording's meta;
    // options given alongside would be silently ignored, so they are
    // rejected instead (priority/stream/record stay meaningful).
    if (out.replayRec) {
        if (out.record) {
            err = "\"record\" and \"replay\" are mutually exclusive";
            return false;
        }
        if (haveOptions) {
            err = "\"replay\" jobs take their options from the "
                  "recording; drop \"options\"";
            return false;
        }
        return true;
    }

    // Scenario-first resolution, with the mirror fields kept in sync
    // for reporting and the cache key (droop scenarios start at
    // their schedule's first operating point).
    if (haveScenario)
        out.sopt.scenario = scenario;
    if (voltageOverride)
        out.sopt.scenario.voltage = *voltageOverride;
    if (seedOverride)
        out.sopt.scenario.seed = *seedOverride;
    out.sopt.voltage = FaultModel::fromScenario(out.sopt.scenario)
                           ->voltageSchedule()
                           .front();
    out.sopt.seed = out.sopt.scenario.seed;

    // runEvaluationSweep() fatal()s on unknown names — validate
    // up-front so a typo comes back as an error frame instead of
    // taking the daemon down.
    if (!validateNames(out.sopt.workloads, workloadNames(),
                       "workload", err))
        return false;
    if (!validateNames(out.sopt.schemes, sweepSchemeNames(), "scheme",
                       err))
        return false;
    if (out.sopt.workloads.empty())
        out.sopt.workloads = workloadNames();
    if (out.sopt.schemes.empty())
        out.sopt.schemes = sweepSchemeNames();

    // Fixed server-side execution policy: one worker per job, no
    // file side effects (results travel on the wire, not to disk).
    out.sopt.jobs = 1;
    out.sopt.jsonPath.clear();
    out.sopt.trace.clear();
    out.sopt.timeseriesPath.clear();
    return true;
}

std::string
canonicalKeyFor(const SweepOptions &sopt)
{
    Json key = Json::object();
    key.set("experiment", Json::string("sweep"));
    key.set("scale", Json::number(sopt.scale));
    key.set("warmup", Json::number(std::uint64_t(sopt.warmupPasses)));
    key.set("voltage", Json::number(sopt.voltage));
    key.set("seed", Json::number(sopt.seed));
    key.set("stats_interval",
            Json::number(std::uint64_t(sopt.statsInterval)));
    key.set("scenario", sopt.scenario.toJson());
    key.set("workloads", stringArray(sopt.workloads));
    key.set("schemes", stringArray(sopt.schemes));
    key.set("build", Json::string(buildId()));
    return key.toString(0);
}

Json
resolvedOptionsJson(const SweepOptions &sopt)
{
    Json doc = Json::object();
    doc.set("scale", Json::number(sopt.scale));
    doc.set("warmup", Json::number(std::uint64_t(sopt.warmupPasses)));
    doc.set("voltage", Json::number(sopt.voltage));
    doc.set("seed", Json::number(sopt.seed));
    doc.set("stats_interval",
            Json::number(std::uint64_t(sopt.statsInterval)));
    doc.set("scenario", sopt.scenario.toJson());
    doc.set("workloads", stringArray(sopt.workloads));
    doc.set("schemes", stringArray(sopt.schemes));
    doc.set("build", Json::string(buildId()));
    return doc;
}

} // namespace killi::serve
