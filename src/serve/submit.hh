/**
 * @file
 * Submit-frame validation and canonicalization, shared between the
 * daemon (src/serve/server.cc) and the fleet coordinator
 * (src/fleet): both must resolve a "submit" frame to the same
 * SweepOptions and — critically — the same canonical cache key, so
 * a shard computed by any worker is content-addressed identically
 * everywhere (SERVING.md, "Cache key").
 */

#ifndef KILLI_SERVE_SUBMIT_HH
#define KILLI_SERVE_SUBMIT_HH

#include <memory>
#include <string>

#include "bench/sweep.hh"
#include "common/json.hh"
#include "replay/recording.hh"

namespace killi::serve
{

/** A validated submit request. */
struct SubmitRequest
{
    SweepOptions sopt;
    int priority = 0;
    bool stream = true;
    /** Capture the run into a recording returned with the result. */
    bool record = false;
    /** Replay job: the inline killi-recording-v1 to verify against.
     *  Shared so the job's work lambda holds the (large) streams
     *  without copying them. */
    std::shared_ptr<replay::Recording> replayRec;
};

/**
 * Validate and resolve a submit frame. Strict like the Options CLI
 * layer — unknown keys, bad types, and out-of-range values are all
 * rejected — but via error returns, never fatal(): the daemon must
 * answer a bad request with an error frame and keep serving. Ranges
 * mirror declareSweepOptions(). Workload/scheme subsets are resolved
 * to explicit full lists so that "all by default" and "all by name"
 * canonicalize (and cache) identically.
 */
bool parseSubmit(const Json &req, SubmitRequest &out,
                 std::string &err);

/**
 * The canonical cache key: compact JSON of every result-affecting
 * knob (the bit-identity contract says jobs/priority/streaming do
 * not belong here) plus the build id, so results never survive a
 * rebuild. See SERVING.md, "Cache key".
 */
std::string canonicalKeyFor(const SweepOptions &sopt);

/** The resolved "options" member echoed in every result document. */
Json resolvedOptionsJson(const SweepOptions &sopt);

} // namespace killi::serve

#endif // KILLI_SERVE_SUBMIT_HH
