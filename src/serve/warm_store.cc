#include "serve/warm_store.hh"

#include "common/build_info.hh"
#include "common/hash.hh"
#include "common/log.hh"

namespace killi::serve
{

WarmStore::WarmStore(std::size_t maxBytes,
                     metrics::MetricsRegistry *reg)
    : maxBytes(maxBytes)
{
    if (!reg)
        return;
    // Same idiom as the ResultCache: scrape-time callbacks pull from
    // the store's own accounting under its mutex, which is safe
    // because the store never touches the registry after
    // construction.
    reg->counterFn("kserved_warm_store_hits_total",
                   "Warm-state lookups served from memory (waiters "
                   "on an in-flight synthesis count here)",
                   {}, [this] {
                       std::lock_guard<std::mutex> lock(mtx);
                       return hitCount;
                   });
    reg->counterFn("kserved_warm_store_misses_total",
                   "Warm-state lookups that ran a synthesis (equals "
                   "the synthesis count exactly)",
                   {}, [this] {
                       std::lock_guard<std::mutex> lock(mtx);
                       return missCount;
                   });
    reg->counterFn("kserved_warm_store_insertions_total",
                   "Payloads inserted into the warm store", {},
                   [this] {
                       std::lock_guard<std::mutex> lock(mtx);
                       return insertCount;
                   });
    reg->counterFn("kserved_warm_store_evictions_total",
                   "Payloads evicted by the byte bound (and dropped "
                   "by drain-time clear)",
                   {}, [this] {
                       std::lock_guard<std::mutex> lock(mtx);
                       return evictCount;
                   });
    reg->gaugeFn("kserved_warm_store_entries",
                 "Payloads resident in the warm store", {}, [this] {
                     std::lock_guard<std::mutex> lock(mtx);
                     return double(lru.size());
                 });
    reg->gaugeFn("kserved_warm_store_bytes",
                 "Payload bytes resident in the warm store", {},
                 [this] {
                     std::lock_guard<std::mutex> lock(mtx);
                     return double(bytesStored);
                 });
}

std::string
WarmStore::faultMapKey(const ScenarioSpec &scenario,
                       std::size_t numLines, std::size_t lineBits)
{
    Json key = Json::object();
    key.set("kind", Json::string("faultmap"));
    key.set("scenario", scenario.toJson());
    key.set("lines", Json::number(std::uint64_t(numLines)));
    key.set("line_bits", Json::number(std::uint64_t(lineBits)));
    key.set("build", Json::string(buildId()));
    return key.toString(0);
}

WarmStore::Payload
WarmStore::getOrSynthesize(const std::string &canonicalKey,
                           const std::function<Payload()> &synthesize)
{
    const std::string hash = sha256Hex(canonicalKey);
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        const auto it = index.find(hash);
        if (it != index.end()) {
            if (it->second->canonicalKey != canonicalKey) {
                panic("WarmStore: content-hash collision for key "
                      "'%s'",
                      canonicalKey.c_str());
            }
            lru.splice(lru.begin(), lru, it->second);
            ++hitCount;
            return it->second->payload;
        }
        if (!inFlight.count(hash))
            break;
        // Another caller is synthesizing this key right now; wait
        // for its insert instead of duplicating the work.
        cv.wait(lock);
    }
    inFlight.insert(hash);
    ++missCount;
    lock.unlock();

    Payload payload;
    try {
        payload = synthesize();
    } catch (...) {
        lock.lock();
        inFlight.erase(hash);
        cv.notify_all();
        throw;
    }

    lock.lock();
    inFlight.erase(hash);
    insertLocked(hash, canonicalKey, payload);
    cv.notify_all();
    return payload;
}

std::shared_ptr<const FaultPopulation>
WarmStore::faultPopulation(
    const std::string &canonicalKey,
    const std::function<FaultPopulation()> &synthesize)
{
    const Payload payload =
        getOrSynthesize(canonicalKey, [&synthesize] {
            auto pop = std::make_shared<const FaultPopulation>(
                synthesize());
            std::size_t bytes = sizeof(FaultPopulation);
            for (const auto &line : *pop) {
                bytes += sizeof(line) +
                         line.capacity() * sizeof(FaultCell);
            }
            return Payload{pop, bytes};
        });
    return std::static_pointer_cast<const FaultPopulation>(
        payload.data);
}

void
WarmStore::insertLocked(std::string hash,
                        const std::string &canonicalKey,
                        Payload payload)
{
    const auto it = index.find(hash);
    if (it != index.end()) {
        // Possible when clear() raced the synthesis and a second
        // caller re-synthesized; payloads are deterministic in the
        // key, keep the newest.
        bytesStored -= it->second->payload.bytes;
        bytesStored += payload.bytes;
        it->second->payload = std::move(payload);
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    bytesStored += payload.bytes;
    lru.push_front(
        Entry{std::move(hash), canonicalKey, std::move(payload)});
    index.emplace(lru.front().hash, lru.begin());
    ++insertCount;
    while (bytesStored > maxBytes && lru.size() > 1) {
        bytesStored -= lru.back().payload.bytes;
        index.erase(lru.back().hash);
        lru.pop_back();
        ++evictCount;
    }
}

void
WarmStore::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    evictCount += lru.size();
    lru.clear();
    index.clear();
    bytesStored = 0;
}

WarmStore::Stats
WarmStore::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    Stats s;
    s.hits = hitCount;
    s.misses = missCount;
    s.insertions = insertCount;
    s.evictions = evictCount;
    s.entries = lru.size();
    s.bytes = bytesStored;
    s.maxBytes = maxBytes;
    return s;
}

Json
WarmStore::Stats::toJson() const
{
    Json doc = Json::object();
    doc.set("hits", Json::number(hits));
    doc.set("misses", Json::number(misses));
    doc.set("insertions", Json::number(insertions));
    doc.set("evictions", Json::number(evictions));
    doc.set("entries", Json::number(std::uint64_t(entries)));
    doc.set("bytes", Json::number(bytes));
    doc.set("max_bytes", Json::number(maxBytes));
    return doc;
}

} // namespace killi::serve
