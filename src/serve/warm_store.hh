/**
 * @file
 * Content-addressed warm-state store of the serving daemon.
 *
 * Where the ResultCache keys *finished result documents* by the full
 * canonical request, the warm store keys *expensive intermediate
 * state* — today the sampled fault population of a die — by just the
 * inputs that determine it: the scenario's canonical document, the
 * array geometry, and the build id. Two concurrent jobs that differ
 * only in workload/scheme subsets miss the result cache but share a
 * die, so the daemon synthesizes the population once and every other
 * sweep point (of either job) adopts it through
 * FaultModel::buildMapFrom(), which is bit-identical to cold
 * sampling by construction (pinned in tests/fault_test.cc).
 *
 * Entries are generic payloads (an opaque shared blob plus its byte
 * size), so future state classes — sliced codec tables keyed by
 * {kind:"codec", ...} — slot in without another store. Lookups are
 * single-flight: when a key is being synthesized, later callers
 * block on it instead of duplicating the work, and only the one
 * caller that ran the synthesizer counts a miss — so
 * kserved_warm_store_misses_total equals the number of syntheses
 * exactly (the serve-smoke CI leg asserts this).
 *
 * Bounded by bytes, not entries (populations vary wildly with
 * geometry): least-recently-used payloads are evicted once the
 * resident total exceeds the bound, always keeping at least the
 * newest entry. All methods are thread-safe.
 */

#ifndef KILLI_SERVE_WARM_STORE_HH
#define KILLI_SERVE_WARM_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/json.hh"
#include "fault/fault_map.hh"
#include "fault/scenario_spec.hh"
#include "metrics/metrics.hh"

namespace killi::serve
{

/** A sampled die: one vector of fault cells per line (the exact
 *  shape FaultMap::population() exposes and
 *  FaultModel::buildMapFrom() adopts). */
using FaultPopulation = std::vector<std::vector<FaultCell>>;

class WarmStore
{
  public:
    /** One stored blob: type-erased so the store can hold any state
     *  class; bytes is the payload's accounted size (the typed
     *  helpers compute it). */
    struct Payload
    {
        std::shared_ptr<const void> data;
        std::size_t bytes = 0;
    };

    /**
     * @param maxBytes resident-payload bound (the newest entry is
     *        always kept, even when it alone exceeds the bound).
     * @param reg optional metrics registry; when set, the store
     *        registers kserved_warm_store_* counters and gauges.
     *        Must outlive the store.
     */
    explicit WarmStore(std::size_t maxBytes,
                       metrics::MetricsRegistry *reg = nullptr);

    /**
     * The canonical warm key of a fault population: compact JSON of
     * {kind, scenario, lines, line_bits, build}. The build id is
     * part of the key so warm state never survives a rebuild —
     * the same rule as the result cache.
     */
    static std::string faultMapKey(const ScenarioSpec &scenario,
                                   std::size_t numLines,
                                   std::size_t lineBits);

    /**
     * Look up @p canonicalKey; on a miss run @p synthesize (without
     * holding the store lock), insert its payload, and return it.
     * Concurrent callers of the same key block until the one
     * synthesis finishes and then count hits — a miss is recorded
     * only for the caller that actually synthesized. A synthesize
     * that throws releases the key's in-flight claim (the next
     * caller retries) and rethrows.
     */
    Payload getOrSynthesize(const std::string &canonicalKey,
                            const std::function<Payload()> &synthesize);

    /** getOrSynthesize() for a fault population, with the byte
     *  accounting done here: @p synthesize returns the sampled
     *  population by value and the store shares it out. */
    std::shared_ptr<const FaultPopulation>
    faultPopulation(const std::string &canonicalKey,
                    const std::function<FaultPopulation()> &synthesize);

    /** Drop every entry, counting them as evictions (the daemon
     *  clears warm state when its drain completes — the gauges must
     *  read 0 after a drain, never drift). */
    void clear();

    struct Stats
    {
        std::uint64_t hits = 0;
        /** Exactly the number of syntheses (see getOrSynthesize). */
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::uint64_t bytes = 0;
        std::uint64_t maxBytes = 0;

        Json toJson() const;
    };

    Stats stats() const;

  private:
    struct Entry
    {
        std::string hash;
        std::string canonicalKey;
        Payload payload;
    };

    /** Caller holds mtx. Insert at LRU front, then evict from the
     *  back while over maxBytes (keeping at least one entry). */
    void insertLocked(std::string hash, const std::string &canonicalKey,
                      Payload payload);

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::size_t maxBytes;
    /** Front = most recently used. */
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    /** Keys currently being synthesized (single-flight). */
    std::unordered_set<std::string> inFlight;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t insertCount = 0;
    std::uint64_t evictCount = 0;
    std::uint64_t bytesStored = 0;
};

} // namespace killi::serve

#endif // KILLI_SERVE_WARM_STORE_HH
