#include "sim/dram.hh"

namespace killi
{

DramModel::DramModel(const DramParams &params)
    : p(params), channelFree(params.channels, 0)
{
    statGroup.counter("reads", "DRAM read accesses");
    statGroup.counter("writes", "DRAM write accesses");
}

Tick
DramModel::access(Addr lineAddr, bool isWrite, Tick now)
{
    const std::size_t channel =
        (lineAddr / p.lineBytes) % p.channels;
    Tick &free = channelFree[channel];
    const Tick start = std::max(now, free);
    free = start + p.occupancyPerAccess;
    ++statGroup.counter(isWrite ? "writes" : "reads");
    return start + p.latency;
}

} // namespace killi
