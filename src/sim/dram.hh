/**
 * @file
 * A latency/bandwidth DRAM model: fixed access latency plus
 * per-channel occupancy, with channels interleaved at cache-line
 * granularity. This is the memory the write-through GPU L2 falls
 * back to on misses and error-induced misses.
 */

#ifndef KILLI_SIM_DRAM_HH
#define KILLI_SIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace killi
{

struct DramParams
{
    unsigned channels = 8;
    Cycle latency = 200;        //!< pin-to-pin access latency
    Cycle occupancyPerAccess = 4; //!< 64B burst at 16B/cycle
    unsigned lineBytes = 64;
};

class DramModel
{
  public:
    explicit DramModel(const DramParams &params);

    /**
     * Issue an access at time @p now; returns the completion time.
     * Channel queuing is modeled through a per-channel next-free
     * cursor (no reordering).
     */
    Tick access(Addr lineAddr, bool isWrite, Tick now);

    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint64_t reads() const
    {
        return statGroup.counterValue("reads");
    }
    std::uint64_t writes() const
    {
        return statGroup.counterValue("writes");
    }

  private:
    DramParams p;
    std::vector<Tick> channelFree;
    StatGroup statGroup;
};

} // namespace killi

#endif // KILLI_SIM_DRAM_HH
