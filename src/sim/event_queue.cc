#include "sim/event_queue.hh"

#include "common/log.hh"

namespace killi
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now));
    heap.push(Event{when, priority, seqCounter++, std::move(cb)});
}

bool
EventQueue::run(Tick limit)
{
    while (!heap.empty()) {
        if (heap.top().when > limit) {
            now = limit;
            return false;
        }
        // Move the callback out before popping so that the callback
        // may schedule further events safely.
        Event ev = heap.top();
        heap.pop();
        now = ev.when;
        ++executed;
        ev.cb();
    }
    return true;
}

} // namespace killi
