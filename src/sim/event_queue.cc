#include "sim/event_queue.hh"

#include "common/log.hh"

namespace killi
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now));
    KTRACE(trace, now, TraceCat::Sim, "sim.schedule", {"when", when},
           {"priority", priority});
    heap.push(Event{when, priority, seqCounter++, std::move(cb)});
}

void
EventQueue::setPeriodic(Tick interval, Callback cb)
{
    periodicInterval = interval;
    periodicCb = interval ? std::move(cb) : Callback{};
    nextPeriodic = now + interval;
}

bool
EventQueue::run(Tick limit)
{
    while (!heap.empty()) {
        const Tick nextEvent = heap.top().when;
        if (periodicCb && nextPeriodic <= nextEvent &&
            nextPeriodic <= limit) {
            now = nextPeriodic;
            KTRACE(trace, now, TraceCat::Sim, "sim.periodic",
                   {"interval", periodicInterval});
            periodicCb();
            nextPeriodic += periodicInterval;
            continue;
        }
        if (nextEvent > limit) {
            now = limit;
            return false;
        }
        // Move the callback out before popping so that the callback
        // may schedule further events safely.
        Event ev = heap.top();
        heap.pop();
        now = ev.when;
        ++executed;
        ev.cb();
    }
    return true;
}

} // namespace killi
