#include "sim/event_queue.hh"

#include "common/log.hh"
#include "common/replay_probe.hh"

namespace killi
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now));
    KTRACE(trace, now, TraceCat::Sim, "sim.schedule", {"when", when},
           {"priority", priority});
    heap.push(Event{when, priority, seqCounter++, std::move(cb)});
}

void
EventQueue::setPeriodic(Tick interval, Callback cb)
{
    periodicInterval = interval;
    periodicCb = interval ? std::move(cb) : Callback{};
    nextPeriodic = now + interval;
}

bool
EventQueue::run(Tick limit)
{
    while (!heap.empty()) {
        const Tick nextEvent = heap.top().when;
        if (periodicCb && nextPeriodic <= nextEvent &&
            nextPeriodic <= limit) {
            now = nextPeriodic;
            KTRACE(trace, now, TraceCat::Sim, "sim.periodic",
                   {"interval", periodicInterval});
            periodicCb();
            nextPeriodic += periodicInterval;
            continue;
        }
        if (nextEvent > limit) {
            now = limit;
            return false;
        }
        // Move the callback out before popping so that the callback
        // may schedule further events safely.
        Event ev = heap.top();
        heap.pop();
        // The determinism contract (see the header): pops are
        // strictly increasing in (when, priority, seq). Checked
        // unconditionally — assert() is dead under the default
        // RelWithDebInfo NDEBUG build, and a violation here would be
        // a silent nondeterminism source that record-replay would
        // then faithfully reproduce instead of exposing. Three
        // integer compares per event, branch never taken.
        if (executed > 0 &&
            (ev.when < lastPop.when ||
             (ev.when == lastPop.when &&
              (ev.priority < lastPop.priority ||
               (ev.priority == lastPop.priority &&
                ev.seq <= lastPop.seq))))) {
            panic("EventQueue: pop order violated: (%llu, %d, %llu) "
                  "after (%llu, %d, %llu)",
                  static_cast<unsigned long long>(ev.when),
                  ev.priority,
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(lastPop.when),
                  lastPop.priority,
                  static_cast<unsigned long long>(lastPop.seq));
        }
        lastPop = {ev.when, ev.priority, ev.seq};
        if (ReplayProbe *probe = replayProbe()) [[unlikely]]
            probe->onEventPop(ev.when, ev.priority, ev.seq);
        now = ev.when;
        ++executed;
        ev.cb();
    }
    return true;
}

} // namespace killi
