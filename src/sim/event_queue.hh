/**
 * @file
 * A minimal discrete-event simulation kernel in the style of gem5's
 * event queue: events are (tick, priority, insertion-order)-ordered
 * callbacks.
 *
 * Determinism contract: events pop in strictly increasing
 * (when, priority, seq) lexicographic order — same-tick events run
 * in ascending priority, and same-tick same-priority events run in
 * insertion (seq) order, *regardless of heap internals*. The
 * comparator orders all three fields and seq is unique per event,
 * so the heap never has equal elements to permute; run() enforces
 * the contract with an always-on check (it is the foundation the
 * record-replay layer in src/replay verifies runs against). An
 * installed ReplayProbe (common/replay_probe.hh) observes every pop.
 */

#ifndef KILLI_SIM_EVENT_QUEUE_HH
#define KILLI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace killi
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return now; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** True iff no events are pending. */
    bool empty() const { return heap.empty(); }

    /**
     * Schedule @p cb at absolute time @p when (>= curTick()).
     * Lower @p priority runs earlier within a tick.
     */
    void schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, int priority = 0)
    {
        schedule(now + delta, std::move(cb), priority);
    }

    /**
     * Register a callback fired every @p interval ticks while events
     * remain pending (interval 0 uninstalls). The first firing is at
     * curTick() + interval. A firing that coincides with a scheduled
     * event runs *before* that tick's events, so a stats snapshot at
     * tick T observes the state as of the end of tick T-1. Firings
     * stop with the last event: callers wanting the final state take
     * one explicit sample after run() returns.
     */
    void setPeriodic(Tick interval, Callback cb);

    /** Attach a trace sink for sim.* events (nullptr detaches). */
    void setTrace(TraceSink *sink) { trace = sink; }

    /** Run events until the queue drains or @p limit is reached.
     *  Returns true if the queue drained. */
    bool run(Tick limit = kMaxTick);

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** The last popped (when, priority, seq), for the pop-order
     *  determinism check in run(). */
    struct PopOrder
    {
        Tick when = 0;
        int priority = 0;
        std::uint64_t seq = 0;
    };

    Tick now = 0;
    std::uint64_t seqCounter = 0;
    std::uint64_t executed = 0;
    PopOrder lastPop;
    std::priority_queue<Event, std::vector<Event>, Later> heap;
    Tick periodicInterval = 0;
    Tick nextPeriodic = 0;
    Callback periodicCb;
    TraceSink *trace = nullptr;
};

} // namespace killi

#endif // KILLI_SIM_EVENT_QUEUE_HH
