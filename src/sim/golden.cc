#include "sim/golden.hh"

namespace killi
{

namespace
{
/** splitmix64 mixing for deterministic content generation. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

BitVec
GoldenMemory::data(Addr lineAddr, std::uint32_t ver) const
{
    BitVec value(lineBits());
    std::uint64_t state = mix(lineAddr * 0x2545f4914f6cdd1dULL + ver);
    for (std::size_t w = 0; w < value.numWords(); ++w) {
        state = mix(state);
        value.setWord(w, state);
    }
    return value;
}

} // namespace killi
