/**
 * @file
 * Golden memory: the simulator's data-integrity oracle.
 *
 * Rather than storing every 64-byte line, memory contents are a
 * deterministic function of (line address, version); writes bump the
 * version. The cache hierarchy carries the version alongside cached
 * data, so at every delivery point the simulator can regenerate the
 * golden value and detect Silent Data Corruption introduced by the
 * low-voltage fault overlay — the end-to-end guarantee Killi's
 * write-through design must provide.
 */

#ifndef KILLI_SIM_GOLDEN_HH
#define KILLI_SIM_GOLDEN_HH

#include <cstdint>
#include <unordered_map>

#include "common/bitvec.hh"
#include "common/types.hh"

namespace killi
{

class GoldenMemory
{
  public:
    explicit GoldenMemory(unsigned line_bytes = 64)
        : lineBytes(line_bytes)
    {
    }

    unsigned lineBits() const { return lineBytes * 8; }

    /** Current version of @p lineAddr (0 if never written). */
    std::uint32_t
    version(Addr lineAddr) const
    {
        const auto it = versions.find(lineAddr);
        return it == versions.end() ? 0 : it->second;
    }

    /** Record a store: bumps the line's version and returns it. */
    std::uint32_t
    write(Addr lineAddr)
    {
        return ++versions[lineAddr];
    }

    /** The (deterministic) content of @p lineAddr at @p ver. */
    BitVec data(Addr lineAddr, std::uint32_t ver) const;

    /** Content at the line's current version. */
    BitVec
    data(Addr lineAddr) const
    {
        return data(lineAddr, version(lineAddr));
    }

  private:
    unsigned lineBytes;
    std::unordered_map<Addr, std::uint32_t> versions;
};

} // namespace killi

#endif // KILLI_SIM_GOLDEN_HH
