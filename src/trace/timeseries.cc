#include "trace/timeseries.hh"

#include <limits>

#include "common/log.hh"

namespace killi
{

void
StatTimeseries::addSource(std::string name, Source fn)
{
    if (!ticks.empty())
        panic("StatTimeseries: addSource('%s') after sampling began",
              name.c_str());
    for (const std::string &existing : names) {
        if (existing == name)
            panic("StatTimeseries: duplicate column '%s'", name.c_str());
    }
    names.push_back(std::move(name));
    sources.push_back(std::move(fn));
}

void
StatTimeseries::sample(Tick now)
{
    std::vector<double> row;
    row.reserve(sources.size());
    for (const Source &fn : sources)
        row.push_back(fn ? fn() : 0.0);
    if (onSample)
        onSample(now, row);
    if (!ticks.empty() && ticks.back() == now) {
        rows.back() = std::move(row);
        return;
    }
    ticks.push_back(now);
    rows.push_back(std::move(row));
}

void
StatTimeseries::setOnSample(
    std::function<void(Tick, const std::vector<double> &)> fn)
{
    onSample = std::move(fn);
}

void
StatTimeseries::clearSamples()
{
    ticks.clear();
    rows.clear();
}

double
StatTimeseries::lastValue(const std::string &name) const
{
    if (rows.empty())
        return std::numeric_limits<double>::quiet_NaN();
    for (std::size_t c = 0; c < names.size(); ++c) {
        if (names[c] == name)
            return rows.back()[c];
    }
    return std::numeric_limits<double>::quiet_NaN();
}

Json
StatTimeseries::toJson() const
{
    Json doc = Json::object();
    doc.set("interval", Json::number(std::uint64_t(interval_)));
    Json cols = Json::array();
    cols.push(Json::string("tick"));
    for (const std::string &name : names)
        cols.push(Json::string(name));
    doc.set("columns", std::move(cols));
    Json sampleArr = Json::array();
    for (std::size_t r = 0; r < ticks.size(); ++r) {
        Json row = Json::array();
        row.push(Json::number(std::uint64_t(ticks[r])));
        for (double v : rows[r])
            row.push(Json::number(v));
        sampleArr.push(std::move(row));
    }
    doc.set("samples", std::move(sampleArr));
    return doc;
}

} // namespace killi
