/**
 * @file
 * Periodic stat snapshotting: a StatTimeseries polls a set of named
 * scalar sources (usually closures over StatGroup counters/formulas)
 * every N cycles and accumulates a columnar time series that
 * serializes to JSON for plotting MPKI, ECC-cache occupancy,
 * protection-grade mix, etc. over simulated time.
 *
 * Sampling is driven externally (EventQueue::setPeriodic or an
 * explicit call after run()); the series itself is passive and
 * single-threaded, matching the one-GpuSystem-per-thread confinement
 * contract.
 */

#ifndef KILLI_TRACE_TIMESERIES_HH
#define KILLI_TRACE_TIMESERIES_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace killi
{

class StatTimeseries
{
  public:
    using Source = std::function<double()>;

    /** @param sampleInterval nominal cycles between samples (recorded
     *  in the JSON header; the caller drives actual sampling). */
    explicit StatTimeseries(Tick sampleInterval = 0)
        : interval_(sampleInterval)
    {
    }

    /** Register a named column. Must happen before the first
     *  sample(); sources are polled in registration order. */
    void addSource(std::string name, Source fn);

    Tick interval() const { return interval_; }
    std::size_t columns() const { return sources.size(); }
    std::size_t samples() const { return ticks.size(); }
    bool empty() const { return ticks.empty(); }

    /** Poll every source and append one row stamped @p now. If @p now
     *  equals the previous sample's tick the row is overwritten
     *  instead of duplicated (final post-run sample may coincide with
     *  the last periodic one). */
    void sample(Tick now);

    /**
     * Install an observer invoked after every sample() with the tick
     * and the freshly polled row (column order matches registration
     * order; use columnNames() to map). This is the serving daemon's
     * progress tap: a long-running sweep point streams periodic
     * snapshots to the submitting client without touching the
     * accumulated series. The callback runs on the sampling thread —
     * for runner workers that is *not* the main thread, so it must
     * be thread-safe with respect to its own captures. Null clears.
     */
    void setOnSample(
        std::function<void(Tick, const std::vector<double> &)> fn);

    /** Registered column names (without the leading "tick"). */
    const std::vector<std::string> &columnNames() const
    {
        return names;
    }

    /** Drop accumulated rows (e.g. after a warmup pass); sources and
     *  interval are kept. */
    void clearSamples();

    /** Tick column of the accumulated series. */
    const std::vector<Tick> &sampleTicks() const { return ticks; }

    /** Last sampled value of a column; NaN if never sampled or the
     *  name is unknown. */
    double lastValue(const std::string &name) const;

    /**
     * {"interval":N, "columns":["tick", names...],
     *  "samples":[[tick, v...], ...]}
     */
    Json toJson() const;

  private:
    Tick interval_;
    std::vector<std::string> names;
    std::vector<Source> sources;
    std::vector<Tick> ticks;
    std::vector<std::vector<double>> rows;
    std::function<void(Tick, const std::vector<double> &)> onSample;
};

} // namespace killi

#endif // KILLI_TRACE_TIMESERIES_HH
