#include "trace/trace.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/log.hh"
#include "common/replay_probe.hh"

namespace killi
{

namespace
{

/** FNV-1a over arbitrary bytes (trace-record digests for replay). */
std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Fold one trace record — name, category, and every argument's key,
 * kind, and raw value bits — into a 64-bit digest for the replay
 * probe. TraceArg cannot cross into common/replay_probe.hh (trace
 * depends on common, not vice versa), so the fold happens here and
 * only the digest travels.
 */
std::uint64_t
traceRecordDigest(TraceCat cat, const char *name,
                  const std::initializer_list<TraceArg> &args)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const std::uint32_t catBits = std::uint32_t(cat);
    hash = fnv1a(hash, &catBits, sizeof(catBits));
    hash = fnv1a(hash, name, std::strlen(name));
    for (const TraceArg &arg : args) {
        hash = fnv1a(hash, arg.key, std::strlen(arg.key));
        const auto kind = std::uint8_t(arg.kind);
        hash = fnv1a(hash, &kind, sizeof(kind));
        switch (arg.kind) {
          case TraceArg::Kind::U64:
            hash = fnv1a(hash, &arg.u, sizeof(arg.u));
            break;
          case TraceArg::Kind::I64:
            hash = fnv1a(hash, &arg.i, sizeof(arg.i));
            break;
          case TraceArg::Kind::F64:
            hash = fnv1a(hash, &arg.f, sizeof(arg.f));
            break;
          case TraceArg::Kind::Bool:
            hash = fnv1a(hash, &arg.b, sizeof(arg.b));
            break;
          case TraceArg::Kind::Str:
            if (arg.s)
                hash = fnv1a(hash, arg.s, std::strlen(arg.s));
            break;
        }
    }
    return hash;
}

/** Sink identity generator (thread-local cache invalidation). */
std::atomic<std::uint64_t> gSinkIds{1};

/** Process-wide wraparound losses across every sink; see
 *  traceDroppedRecordsTotal(). */
std::atomic<std::uint64_t> gDroppedRecords{0};

/** One-slot per-thread cache: the ring this thread last recorded
 *  into, keyed by sink identity. The common case — one sink per
 *  thread — never takes the registry mutex after the first event. */
struct TlsRingSlot
{
    std::uint64_t sinkId = 0;
    void *ring = nullptr;
};
thread_local TlsRingSlot tlsRing;

} // namespace

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sim: return "sim";
      case TraceCat::L2: return "l2";
      case TraceCat::Dfh: return "dfh";
      case TraceCat::Ecc: return "ecc";
      case TraceCat::Error: return "error";
      case TraceCat::Gpu: return "gpu";
      case TraceCat::Stats: return "stats";
      case TraceCat::Check: return "check";
    }
    return "?";
}

bool
parseTraceCats(const std::string &list, std::uint32_t &mask,
               std::string *err)
{
    const std::uint32_t parsed = traceMaskFromList(list);
    if (parsed == kBadTraceMask) {
        if (err) {
            *err = "unknown trace category in '" + list +
                   "' (known: sim,l2,dfh,ecc,error,gpu,stats,check,"
                   "all,none)";
        }
        return false;
    }
    mask = parsed;
    return true;
}

Json
TraceArg::valueJson() const
{
    switch (kind) {
      case Kind::U64: return Json::number(u);
      case Kind::I64: return Json::number(i);
      case Kind::F64: return Json::number(f);
      case Kind::Bool: return Json::boolean(b);
      case Kind::Str: return Json::string(s ? s : "");
    }
    return Json::null();
}

Json
TraceEvent::toJson() const
{
    Json doc = Json::object();
    doc.set("t", Json::number(std::uint64_t(tick)));
    doc.set("cat", Json::string(traceCatName(cat)));
    doc.set("name", Json::string(name));
    doc.set("tid", Json::number(std::uint64_t(tid)));
    if (nargs) {
        Json argObj = Json::object();
        for (unsigned a = 0; a < nargs; ++a)
            argObj.set(args[a].key, args[a].valueJson());
        doc.set("args", std::move(argObj));
    }
    return doc;
}

Json
TraceEvent::toChromeJson() const
{
    // Instant event ("ph":"i", thread scope). ts is nominally in
    // microseconds; we map 1 cycle -> 1 us, which Perfetto renders
    // fine (times read as cycles).
    Json doc = Json::object();
    doc.set("name", Json::string(name));
    doc.set("cat", Json::string(traceCatName(cat)));
    doc.set("ph", Json::string("i"));
    doc.set("s", Json::string("t"));
    doc.set("ts", Json::number(std::uint64_t(tick)));
    doc.set("pid", Json::number(std::int64_t(0)));
    doc.set("tid", Json::number(std::uint64_t(tid)));
    Json argObj = Json::object();
    for (unsigned a = 0; a < nargs; ++a)
        argObj.set(args[a].key, args[a].valueJson());
    doc.set("args", std::move(argObj));
    return doc;
}

TraceSink::TraceSink(std::size_t capacityPerThread)
    : sinkId(gSinkIds.fetch_add(1, std::memory_order_relaxed)),
      capacity(capacityPerThread ? capacityPerThread : 1)
{
}

void
TraceSink::setMask(std::uint32_t mask)
{
    runtimeMask.store(mask, std::memory_order_relaxed);
}

TraceSink::Ring &
TraceSink::ringForThisThread()
{
    if (tlsRing.sinkId == sinkId)
        return *static_cast<Ring *>(tlsRing.ring);

    std::lock_guard<std::mutex> lock(registry);
    const std::thread::id self = std::this_thread::get_id();
    Ring *mine = nullptr;
    for (Ring &ring : rings) {
        if (ring.owner == self) {
            mine = &ring;
            break;
        }
    }
    if (!mine) {
        rings.push_back(Ring{});
        mine = &rings.back();
        mine->owner = self;
        mine->tid = unsigned(rings.size() - 1);
        mine->buf.reserve(std::min<std::size_t>(capacity, 1024));
    }
    tlsRing = {sinkId, mine};
    return *mine;
}

void
TraceSink::record(Tick tick, TraceCat cat, const char *name,
                  std::initializer_list<TraceArg> args)
{
    if (ReplayProbe *probe = replayProbe()) [[unlikely]] {
        probe->onTraceRecord(tick, std::uint32_t(cat), name,
                             traceRecordDigest(cat, name, args));
    }
    Ring &ring = ringForThisThread();
    TraceEvent ev;
    ev.tick = tick;
    ev.seq = seqCounter.fetch_add(1, std::memory_order_relaxed);
    ev.cat = cat;
    ev.name = name;
    ev.tid = ring.tid;
    for (const TraceArg &arg : args) {
        if (ev.nargs == TraceEvent::kMaxArgs)
            break;
        ev.args[ev.nargs++] = arg;
    }
    if (ring.buf.size() < capacity) {
        ring.buf.push_back(ev);
    } else {
        // Wraparound: the overwritten slot's event is lost. Account
        // the loss by the *overwritten* event's category — that is
        // the record that no longer exists.
        const TraceEvent &victim = ring.buf[ring.written % capacity];
        const auto catBits = std::uint32_t(victim.cat);
        ring.droppedByCat[std::countr_zero(catBits) & 7]++;
        gDroppedRecords.fetch_add(1, std::memory_order_relaxed);
        if (!dropWarned.load(std::memory_order_relaxed) &&
            !dropWarned.exchange(true, std::memory_order_relaxed)) {
            warn("ktrace: ring buffer full (capacity %zu/thread); "
                 "oldest events are being dropped — see "
                 "TraceSink::stats() / ktrace_dropped_records_total "
                 "for counts",
                 capacity);
        }
        ring.buf[ring.written % capacity] = ev;
    }
    ++ring.written;
}

std::uint64_t
TraceSink::recorded() const
{
    std::lock_guard<std::mutex> lock(registry);
    std::uint64_t total = 0;
    for (const Ring &ring : rings)
        total += ring.written;
    return total;
}

std::uint64_t
TraceSink::dropped() const
{
    std::lock_guard<std::mutex> lock(registry);
    std::uint64_t lost = 0;
    for (const Ring &ring : rings) {
        if (ring.written > ring.buf.size())
            lost += ring.written - ring.buf.size();
    }
    return lost;
}

std::uint64_t
TraceSink::retained() const
{
    std::lock_guard<std::mutex> lock(registry);
    std::uint64_t kept = 0;
    for (const Ring &ring : rings)
        kept += ring.buf.size();
    return kept;
}

TraceSinkStats
TraceSink::stats() const
{
    std::lock_guard<std::mutex> lock(registry);
    TraceSinkStats out;
    out.threads = rings.size();
    for (const Ring &ring : rings) {
        out.recorded += ring.written;
        out.retained += ring.buf.size();
        if (ring.written > ring.buf.size())
            out.dropped += ring.written - ring.buf.size();
        for (std::size_t k = 0; k < out.droppedByCat.size(); ++k)
            out.droppedByCat[k] += ring.droppedByCat[k];
    }
    return out;
}

Json
TraceSinkStats::toJson() const
{
    Json doc = Json::object();
    doc.set("recorded", Json::number(recorded));
    doc.set("dropped", Json::number(dropped));
    doc.set("retained", Json::number(retained));
    doc.set("threads", Json::number(threads));
    Json byCat = Json::object();
    for (std::size_t k = 0; k < droppedByCat.size(); ++k) {
        if (droppedByCat[k]) {
            byCat.set(traceCatName(TraceCat(1u << k)),
                      Json::number(droppedByCat[k]));
        }
    }
    doc.set("dropped_by_cat", std::move(byCat));
    return doc;
}

std::uint64_t
traceDroppedRecordsTotal()
{
    return gDroppedRecords.load(std::memory_order_relaxed);
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(registry);
        for (const Ring &ring : rings) {
            // Oldest-first within the ring: a wrapped ring's oldest
            // element sits at written % capacity.
            const std::size_t n = ring.buf.size();
            const std::size_t start =
                ring.written > n ? ring.written % capacity : 0;
            for (std::size_t k = 0; k < n; ++k)
                out.push_back(ring.buf[(start + k) % n]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  return a.seq < b.seq;
              });
    return out;
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(registry);
    for (Ring &ring : rings) {
        ring.buf.clear();
        ring.written = 0;
        ring.droppedByCat = {};
    }
    // seqCounter is deliberately NOT reset: it is only a (tick, seq)
    // tie-break, and staying monotonic keeps record order unique
    // across a clear() boundary.
}

Json
TraceSink::toJson() const
{
    Json arr = Json::array();
    for (const TraceEvent &ev : events())
        arr.push(ev.toJson());
    return arr;
}

Json
TraceSink::chromeTraceJson() const
{
    Json evArr = Json::array();
    for (const TraceEvent &ev : events())
        evArr.push(ev.toChromeJson());
    Json doc = Json::object();
    doc.set("traceEvents", std::move(evArr));
    doc.set("displayTimeUnit", Json::string("ms"));
    Json meta = Json::object();
    meta.set("recorded", Json::number(recorded()));
    meta.set("dropped", Json::number(dropped()));
    doc.set("otherData", std::move(meta));
    return doc;
}

void
TraceSink::writeJsonl(std::ostream &os) const
{
    for (const TraceEvent &ev : events()) {
        ev.toJson().dump(os, 0);
        os << '\n';
    }
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    chromeTraceJson().dump(os, 2);
    os << '\n';
}

} // namespace killi
