/**
 * @file
 * Structured event tracing for the simulator (the "ktrace" layer).
 *
 * Design goals, in priority order:
 *  1. Near-zero cost when off. Call sites go through the KTRACE()
 *     macro, which compiles away entirely for categories excluded by
 *     the compile-time mask (KILLI_TRACE_CATEGORIES) and otherwise
 *     costs one null check plus one relaxed atomic load when runtime
 *     tracing is disabled.
 *  2. Thread safety without hot-path locks. A TraceSink keeps one
 *     ring buffer per recording thread; record() touches only the
 *     calling thread's ring (registration of a new thread takes the
 *     sink mutex once), so concurrent record() calls from any number
 *     of threads never contend or race. The snapshot/reset APIs
 *     (events(), recorded(), dropped(), retained(), clear(), the
 *     serializers) are NOT synchronized against in-flight record()
 *     calls: callers must quiesce recording first. The simulator
 *     honors this — each GpuSystem records from its own thread and
 *     traces are only read/cleared after the run completes.
 *  3. Bounded memory. Rings wrap: the newest events win, and the
 *     number of overwritten events is reported (dropped()).
 *  4. Standard outputs. Events serialize as JSONL (one object per
 *     line, for grep/jq) and as Chrome trace_event JSON loadable in
 *     Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Event payloads are small fixed arrays of typed key/value
 * arguments. Keys, names, and string values must be string literals
 * (or otherwise have static storage duration): the sink stores the
 * pointers, not copies.
 */

#ifndef KILLI_TRACE_TRACE_HH
#define KILLI_TRACE_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace killi
{

/** Trace categories (bitmask). Kept in sync with traceCatName() and
 *  kTraceCatList in trace.cc. */
enum class TraceCat : std::uint32_t
{
    Sim = 1u << 0,   //!< event-queue activity (schedule, periodic)
    L2 = 1u << 1,    //!< L2 accesses, misses, fills, evictions
    Dfh = 1u << 2,   //!< DFH lifecycle transitions
    Ecc = 1u << 3,   //!< ECC-cache install/evict/contention
    Error = 1u << 4, //!< detections, corrections, SDC, soft errors
    Gpu = 1u << 5,   //!< CU / system-level milestones
    Stats = 1u << 6, //!< periodic stat snapshots
    Check = 1u << 7, //!< kcheck harness markers
};

constexpr std::uint32_t kAllTraceCats = (1u << 8) - 1;

constexpr std::uint32_t
operator|(TraceCat a, TraceCat b)
{
    return std::uint32_t(a) | std::uint32_t(b);
}

/** Short name of a single category ("dfh", "ecc", ...). */
const char *traceCatName(TraceCat cat);

/**
 * Parse a comma-separated category list ("dfh,ecc,l2"); "all" (or
 * "*") selects every category, "" and "none" select nothing.
 * constexpr so the compile-time mask below is derived from the same
 * grammar the --trace flag uses. Returns kBadTraceMask on an unknown
 * name.
 */
constexpr std::uint32_t kBadTraceMask = ~std::uint32_t{0};

constexpr std::uint32_t
traceMaskFromList(std::string_view list)
{
    // Keep in sync with traceCatName(); constexpr forbids reusing the
    // runtime table directly in C++20 without extra machinery.
    constexpr std::pair<std::string_view, std::uint32_t> names[] = {
        {"sim", std::uint32_t(TraceCat::Sim)},
        {"l2", std::uint32_t(TraceCat::L2)},
        {"dfh", std::uint32_t(TraceCat::Dfh)},
        {"ecc", std::uint32_t(TraceCat::Ecc)},
        {"error", std::uint32_t(TraceCat::Error)},
        {"gpu", std::uint32_t(TraceCat::Gpu)},
        {"stats", std::uint32_t(TraceCat::Stats)},
        {"check", std::uint32_t(TraceCat::Check)},
        {"all", kAllTraceCats},
        {"*", kAllTraceCats},
        {"none", 0},
    };
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string_view::npos ? list.size() : comma;
        const std::string_view token = list.substr(pos, end - pos);
        if (!token.empty()) {
            bool found = false;
            for (const auto &[name, bits] : names) {
                if (token == name) {
                    mask |= bits;
                    found = true;
                    break;
                }
            }
            if (!found)
                return kBadTraceMask;
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return mask;
}

/** Runtime wrapper with error reporting for the --trace flag. */
bool parseTraceCats(const std::string &list, std::uint32_t &mask,
                    std::string *err = nullptr);

/**
 * Compile-time category mask. Configure with
 * -DKILLI_TRACE_CATEGORIES="dfh,ecc" (CMake option of the same
 * name); categories outside the mask compile to nothing at every
 * KTRACE() site.
 */
#ifndef KILLI_TRACE_CATEGORIES
#define KILLI_TRACE_CATEGORIES "all"
#endif
inline constexpr std::uint32_t kCompiledTraceMask =
    traceMaskFromList(KILLI_TRACE_CATEGORIES);
static_assert(kCompiledTraceMask != kBadTraceMask,
              "KILLI_TRACE_CATEGORIES contains an unknown category");

/** One typed key/value event argument (key must be a literal). */
struct TraceArg
{
    enum class Kind : std::uint8_t
    {
        U64,
        I64,
        F64,
        Bool,
        Str
    };

    constexpr TraceArg() : key(nullptr), kind(Kind::U64), u(0) {}
    constexpr TraceArg(const char *k, std::uint64_t v)
        : key(k), kind(Kind::U64), u(v)
    {
    }
    constexpr TraceArg(const char *k, std::uint32_t v)
        : key(k), kind(Kind::U64), u(v)
    {
    }
    constexpr TraceArg(const char *k, std::int64_t v)
        : key(k), kind(Kind::I64), i(v)
    {
    }
    constexpr TraceArg(const char *k, int v)
        : key(k), kind(Kind::I64), i(v)
    {
    }
    constexpr TraceArg(const char *k, double v)
        : key(k), kind(Kind::F64), f(v)
    {
    }
    constexpr TraceArg(const char *k, bool v)
        : key(k), kind(Kind::Bool), b(v)
    {
    }
    constexpr TraceArg(const char *k, const char *v)
        : key(k), kind(Kind::Str), s(v)
    {
    }

    Json valueJson() const;

    const char *key;
    Kind kind;
    union
    {
        std::uint64_t u;
        std::int64_t i;
        double f;
        bool b;
        const char *s;
    };
};

/** A recorded event. Payload capacity is fixed (kMaxArgs). */
struct TraceEvent
{
    static constexpr std::size_t kMaxArgs = 6;

    Tick tick = 0;
    std::uint64_t seq = 0; //!< sink-wide record order (tie-break)
    TraceCat cat = TraceCat::Sim;
    const char *name = "";
    unsigned tid = 0; //!< recording-thread index within the sink
    unsigned nargs = 0;
    TraceArg args[kMaxArgs];

    /** {"t":..,"cat":..,"name":..,"tid":..,"args":{..}} */
    Json toJson() const;
    /** Chrome trace_event instant-event object. */
    Json toChromeJson() const;
};

/**
 * Point-in-time accounting snapshot of one sink (see
 * TraceSink::stats()). droppedByCat is indexed by category bit
 * position (bit k of the TraceCat mask).
 */
struct TraceSinkStats
{
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t retained = 0;
    std::uint64_t threads = 0;
    std::array<std::uint64_t, 8> droppedByCat{};

    /** {"recorded","dropped","retained","threads",
     *   "dropped_by_cat":{<name>:n, ...}} — only categories that
     *  actually dropped appear in dropped_by_cat. */
    Json toJson() const;
};

/**
 * Process-wide total of trace records lost to ring wraparound,
 * summed across every TraceSink that ever existed. Monotone and safe
 * to read concurrently with recording — this is the value kmetrics
 * exposes as ktrace_dropped_records_total.
 */
std::uint64_t traceDroppedRecordsTotal();

class TraceSink
{
  public:
    /** @param capacityPerThread ring size per recording thread. */
    explicit TraceSink(std::size_t capacityPerThread = 1 << 16);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Runtime category mask (categories stripped at compile time
     *  stay off regardless). */
    void setMask(std::uint32_t mask);
    std::uint32_t mask() const
    {
        return runtimeMask.load(std::memory_order_relaxed);
    }

    bool
    enabled(TraceCat cat) const
    {
        return (runtimeMask.load(std::memory_order_relaxed) &
                std::uint32_t(cat)) != 0;
    }

    /** Record one event (hot path; lock-free after the calling
     *  thread's first record). Prefer the KTRACE() macro. */
    void record(Tick tick, TraceCat cat, const char *name,
                std::initializer_list<TraceArg> args);

    // The accessors below (and the serializers) require recording to
    // have quiesced: they do not synchronize with in-flight record()
    // calls (see design note 2 above).

    /** Total record() calls, including later-overwritten events. */
    std::uint64_t recorded() const;
    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const;
    /** Events currently retained. */
    std::uint64_t retained() const;
    /** Everything above plus per-category drop counts, in one
     *  snapshot. */
    TraceSinkStats stats() const;

    /** Merged snapshot of every thread's ring, (tick, seq)-ordered. */
    std::vector<TraceEvent> events() const;

    /** Drop all recorded events (rings stay registered; sequence
     *  numbers keep increasing so (tick, seq) order stays unique
     *  across the clear boundary). */
    void clear();

    /** Array of TraceEvent::toJson() objects, (tick, seq)-ordered. */
    Json toJson() const;
    /** {"traceEvents":[...]} — loadable in Perfetto. */
    Json chromeTraceJson() const;

    /** One compact JSON object per line. */
    void writeJsonl(std::ostream &os) const;
    /** Pretty-printed chromeTraceJson(). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct Ring
    {
        std::thread::id owner;
        unsigned tid = 0;
        std::uint64_t written = 0; //!< total records into this ring
        /** Overwritten events by category bit position; owner-thread
         *  writes only (same quiesce rule as buf/written). */
        std::array<std::uint64_t, 8> droppedByCat{};
        std::vector<TraceEvent> buf;
    };

    Ring &ringForThisThread();

    const std::uint64_t sinkId;
    const std::size_t capacity;
    std::atomic<std::uint32_t> runtimeMask{kAllTraceCats};
    std::atomic<std::uint64_t> seqCounter{0};
    /** One-shot latch for the first-drop warn(). */
    std::atomic<bool> dropWarned{false};
    mutable std::mutex registry;
    std::deque<Ring> rings; //!< deque: stable addresses on growth
};

/**
 * The hot-path macro: compiles to nothing for categories outside
 * KILLI_TRACE_CATEGORIES; otherwise a null check plus a relaxed mask
 * test before the record() call.
 *
 *     KTRACE(trace, now, TraceCat::Dfh, "dfh.transition",
 *            {"line", lineId}, {"from", dfhCName(from)});
 */
#define KTRACE(sinkPtr, tick, cat, name, ...)                           \
    do {                                                                \
        if constexpr ((::killi::kCompiledTraceMask &                    \
                       std::uint32_t(cat)) != 0) {                      \
            ::killi::TraceSink *ktraceSink_ = (sinkPtr);                \
            if (ktraceSink_ && ktraceSink_->enabled(cat))               \
                ktraceSink_->record((tick), (cat), (name),              \
                                    {__VA_ARGS__});                     \
        }                                                               \
    } while (0)

} // namespace killi

#endif // KILLI_TRACE_TRACE_HH
