/**
 * @file
 * Tests pinning the analytical models to the paper's numbers:
 * coverage (§5.3 / Fig. 6 / §5.6.2), storage area (Tables 3, 4, 5,
 * 7), and power (Table 6). Where the paper's own arithmetic is
 * reproduced exactly (ECC cache bytes, area ratios) the tests assert
 * tight tolerances; where it depends on unpublished constants the
 * tests assert the ordering and approximate magnitudes.
 */

#include <gtest/gtest.h>

#include "analysis/area.hh"
#include "analysis/coverage.hh"
#include "analysis/mbist.hh"
#include "analysis/power.hh"
#include "common/rng.hh"
#include "fault/voltage_model.hh"

using namespace killi;

// --- Coverage (Fig. 6, §5.3, §5.6.2) ---------------------------------

TEST(CoverageTest, AllSchemesPerfectAtHighVoltage)
{
    const CoverageModel cm;
    const VoltageModel vm;
    const double p = vm.pCell(0.65);
    EXPECT_GT(cm.killiCoverage(p), 99.999);
    EXPECT_GT(cm.secdedCoverage(p), 99.99);
    EXPECT_GT(cm.dectedCoverage(p), 99.99);
    EXPECT_GT(cm.msEccCoverage(p), 99.999);
}

TEST(CoverageTest, KilliNearPerfectAtLowVoltage)
{
    // Fig. 6: below 0.6xVDD only Killi and FLAIR stay near 100%
    // while the ECC-only schemes collapse.
    const CoverageModel cm;
    const VoltageModel vm;
    for (const double v : {0.60, 0.575, 0.55}) {
        const double p = vm.pCell(v);
        // Both stay in Fig. 6's "near 100%" band; they trade places
        // within it (FLAIR's DMR aliasing grows with pCell^2, Killi's
        // window peaks at intermediate rates), while the ECC-only
        // schemes fall out of it entirely.
        EXPECT_GT(cm.killiCoverage(p), 99.0) << "v=" << v;
        EXPECT_GT(cm.flairCoverage(p), 85.0) << "v=" << v;
        EXPECT_GT(cm.killiCoverage(p), cm.secdedCoverage(p) + 5.0)
            << "v=" << v;
    }
}

TEST(CoverageTest, WeakSchemesCollapseAtLowVoltage)
{
    const CoverageModel cm;
    const VoltageModel vm;
    const double p = vm.pCell(0.55);
    EXPECT_LT(cm.secdedCoverage(p), cm.dectedCoverage(p));
    EXPECT_LT(cm.dectedCoverage(p), cm.msEccCoverage(p));
    EXPECT_LT(cm.msEccCoverage(p), cm.killiCoverage(p));
    EXPECT_LT(cm.secdedCoverage(p), 90.0);
}

TEST(CoverageTest, KilliFailureIsProductOfBothDetectors)
{
    const CoverageModel cm;
    const double p = 1e-3;
    EXPECT_NEAR(cm.pFailKilli(p),
                cm.pFailSecded(p) * cm.pFailSegParity(p), 1e-15);
    EXPECT_LT(cm.pFailKilli(p), cm.pFailSecded(p));
    EXPECT_LT(cm.pFailKilli(p), cm.pFailSegParity(p));
}

TEST(CoverageTest, MaskedSdcWindowMatchesPaperOrder)
{
    // §5.6.2: ~0.003% of lines at 0.625xVDD (we assert the order of
    // magnitude; the paper's masking assumptions are not published).
    const CoverageModel cm;
    const VoltageModel vm;
    const double window = cm.maskedSdcWindow(vm.pCell(0.625));
    EXPECT_GT(window, 0.0001);
    EXPECT_LT(window, 0.05);
}

TEST(CoverageTest, SecdedFailureMonotoneInPcell)
{
    // Note: Killi's *combined* failure is deliberately not asserted
    // monotone — at very high fault rates nearly every line has two
    // odd segments, so segmented parity detects more, and the
    // product P_fail(SECDED) * P_fail(Seg.Parity) can decline.
    const CoverageModel cm;
    double prevSecded = 0;
    for (double p = 1e-5; p < 2e-2; p *= 2) {
        EXPECT_GE(cm.pFailSecded(p), prevSecded);
        prevSecded = cm.pFailSecded(p);
    }
}

TEST(CoverageTest, EmpiricalBracketsClosedForm)
{
    // The paper's P_fail(Seg.Parity) expression omits mixed patterns
    // (one odd-singleton segment plus even-error segments), so the
    // closed form is an upper bound on coverage; the Monte-Carlo
    // classification is the honest estimate. At low fault rates the
    // two converge.
    const CoverageModel cm;
    Rng rng(17);
    const double pHigh = 8e-3;
    const double analytic = cm.killiCoverage(pHigh);
    const double empirical =
        cm.empiricalKilliCoverage(pHigh, 20000, rng);
    EXPECT_LE(empirical, analytic + 0.2);
    EXPECT_GT(empirical, analytic - 6.0);

    const double pLow = 3e-4; // the 0.625xVDD operating point
    EXPECT_NEAR(cm.empiricalKilliCoverage(pLow, 20000, rng),
                cm.killiCoverage(pLow), 0.2);
}

// --- Area (Tables 3, 4, 5, 7) -----------------------------------------

TEST(AreaTest, EccCacheEntryIs41Bits)
{
    // Paper Table 3: "ECC cache line size 41 bits".
    EXPECT_EQ(area::eccEntryBits(CodeKind::Secded), 41u);
}

TEST(AreaTest, PaperQuotedEccCacheSizes)
{
    // "656B for the 1:256 ratio" and "10.25KB for the 1:16 ratio".
    const std::size_t entries256 = area::kL2Lines / 256;
    const std::size_t entries16 = area::kL2Lines / 16;
    EXPECT_EQ(entries256 * area::eccEntryBits(CodeKind::Secded) / 8,
              656u);
    EXPECT_EQ(entries16 * area::eccEntryBits(CodeKind::Secded) / 8,
              10496u); // 10.25 KB
}

TEST(AreaTest, Table5KilliTotals)
{
    // "the Killi area overhead ranges from 24.6KB (1:256) to
    // 34.25KB (1:16)".
    EXPECT_NEAR(area::killi(256).bytes(), 24.6 * 1024, 100);
    EXPECT_NEAR(area::killi(16).bytes(), 34.25 * 1024, 100);
}

TEST(AreaTest, Table5Ratios)
{
    // Row 2 of Table 5, normalized to SECDED.
    EXPECT_NEAR(area::killi(256).ratioVsSecded, 0.51, 0.01);
    EXPECT_NEAR(area::killi(128).ratioVsSecded, 0.52, 0.01);
    EXPECT_NEAR(area::killi(64).ratioVsSecded, 0.55, 0.01);
    EXPECT_NEAR(area::killi(32).ratioVsSecded, 0.60, 0.015);
    EXPECT_NEAR(area::killi(16).ratioVsSecded, 0.71, 0.015);
}

TEST(AreaTest, Table5PercentOverL2)
{
    // Row 3: SECDED 2.3%, DECTED 4.3%, Killi 1.2%..1.67%.
    EXPECT_NEAR(area::baseline(CodeKind::Secded).pctOverL2, 2.3, 0.1);
    EXPECT_NEAR(area::baseline(CodeKind::Dected).pctOverL2, 4.3, 0.1);
    EXPECT_NEAR(area::baseline(CodeKind::Olsc11).pctOverL2, 38.6, 0.5);
    EXPECT_NEAR(area::killi(256).pctOverL2, 1.20, 0.03);
    EXPECT_NEAR(area::killi(16).pctOverL2, 1.67, 0.03);
}

TEST(AreaTest, Table4StrongerCodesInKilli)
{
    // Every cell of paper Table 4, at bit-count precision.
    const struct
    {
        CodeKind kind;
        std::size_t ratio;
        double expected;
    } cells[] = {
        {CodeKind::Dected, 256, 0.51}, {CodeKind::Dected, 128, 0.53},
        {CodeKind::Dected, 64, 0.55},  {CodeKind::Dected, 32, 0.61},
        {CodeKind::Dected, 16, 0.71},  {CodeKind::Tecqed, 256, 0.52},
        {CodeKind::Tecqed, 128, 0.54}, {CodeKind::Tecqed, 64, 0.58},
        {CodeKind::Tecqed, 32, 0.66},  {CodeKind::Tecqed, 16, 0.82},
        {CodeKind::Hexa, 256, 0.53},   {CodeKind::Hexa, 128, 0.56},
        {CodeKind::Hexa, 64, 0.62},    {CodeKind::Hexa, 32, 0.74},
        {CodeKind::Hexa, 16, 0.97},
    };
    for (const auto &cell : cells) {
        EXPECT_NEAR(area::killi(cell.ratio, cell.kind).ratioVsSecded,
                    cell.expected, 0.015)
            << codeKindName(cell.kind) << " 1:" << cell.ratio;
    }
}

TEST(AreaTest, Table7KilliOlscVsMsEcc)
{
    // 1:8 at 0.6xVDD -> ~17% of MS-ECC; 1:2 at 0.575xVDD -> ~65%.
    EXPECT_NEAR(area::killiOlscVsMsEcc(8), 0.17, 0.02);
    EXPECT_NEAR(area::killiOlscVsMsEcc(2), 0.65, 0.06);
}

TEST(AreaTest, OverheadMonotoneInEccCacheSize)
{
    double prev = 0;
    for (const std::size_t ratio : {256, 128, 64, 32, 16}) {
        const double r = area::killi(ratio).ratioVsSecded;
        EXPECT_GT(r, prev);
        prev = r;
    }
}

// --- Power (Table 6) ---------------------------------------------------

TEST(PowerTest, BaselineNormalizesToUnity)
{
    const auto b = power::normalized(1.0, 0.0, 1.0, 1.0, 0.0);
    EXPECT_NEAR(b.total(), 1.0, 1e-12);
}

TEST(PowerTest, Table6Magnitudes)
{
    // All LV schemes land in the paper's 40-56% band at 0.625xVDD.
    const auto killi = power::normalized(
        0.625, 0.012, 1.0, 1.0, power::codecShare("killi"));
    const auto flair = power::normalized(
        0.625, 0.023, 1.0, 1.0, power::codecShare("flair"));
    const auto dected = power::normalized(
        0.625, 0.043, 1.0, 1.0, power::codecShare("dected"));
    const auto msecc = power::normalized(
        0.625, 0.39, 1.0, 1.0, power::codecShare("msecc"));

    EXPECT_NEAR(killi.total(), 0.403, 0.02);
    EXPECT_NEAR(flair.total(), 0.426, 0.02);
    EXPECT_NEAR(dected.total(), 0.437, 0.02);
    EXPECT_NEAR(msecc.total(), 0.553, 0.04);
}

TEST(PowerTest, Table6Ordering)
{
    const double killi = power::normalized(
        0.625, 0.012, 1.0, 1.0, power::codecShare("killi")).total();
    const double flair = power::normalized(
        0.625, 0.023, 1.0, 1.0, power::codecShare("flair")).total();
    const double dected = power::normalized(
        0.625, 0.043, 1.0, 1.0, power::codecShare("dected")).total();
    const double msecc = power::normalized(
        0.625, 0.39, 1.0, 1.0, power::codecShare("msecc")).total();
    EXPECT_LT(killi, flair);
    EXPECT_LT(flair, dected);
    EXPECT_LT(dected, msecc);
    EXPECT_LT(msecc, 1.0);
}

TEST(PowerTest, ExtraTrafficCosts)
{
    const double base = power::normalized(0.625, 0.0, 1.0, 1.0, 0.0)
        .total();
    const double busy = power::normalized(0.625, 0.0, 1.2, 1.3, 0.0)
        .total();
    EXPECT_GT(busy, base);
}

// --- MBIST transition-cost model ---------------------------------------

TEST(MbistTest, MarchPassScalesWithCacheAndAlgorithm)
{
    mbist::Params p; // 2MB, March C- (10N), 64b port
    EXPECT_EQ(mbist::passCycles(p), 2621440u);

    mbist::Params half = p;
    half.cacheBytes /= 2;
    EXPECT_EQ(mbist::passCycles(half), mbist::passCycles(p) / 2);

    mbist::Params shortMarch = p;
    shortMarch.marchElements = 5;
    EXPECT_EQ(mbist::passCycles(shortMarch), mbist::passCycles(p) / 2);

    mbist::Params banked = p;
    banked.ports = 16;
    EXPECT_EQ(mbist::passCycles(banked), mbist::passCycles(p) / 16);
}

TEST(MbistTest, MicrosecondsAtTestFrequency)
{
    mbist::Params p;
    EXPECT_NEAR(mbist::passMicroseconds(p), 2621.44, 0.01);
    p.testFreqGHz = 0.5;
    EXPECT_NEAR(mbist::passMicroseconds(p), 5242.88, 0.01);
}

TEST(MbistTest, AmortizationShrinksWithInterval)
{
    mbist::Params p;
    const double fast = mbist::amortizedOverhead(p, 100.0);
    const double slow = mbist::amortizedOverhead(p, 100000.0);
    EXPECT_GT(fast, 0.9);  // DVFS every 0.1ms: MBIST dominates
    EXPECT_LT(slow, 0.03); // every 100ms: a few percent
    EXPECT_GT(fast, slow);
}

TEST(PowerTest, LargerEccCacheCostsMore)
{
    // Table 6: Killi 1:256 (40.3) < 1:16 (42.4).
    const double small = power::normalized(
        0.625, 0.012, 1.0, 1.0, power::codecShare("killi")).total();
    const double large = power::normalized(
        0.625, 0.0167, 1.0, 1.0, power::codecShare("killi")).total();
    EXPECT_LT(small, large);
}
