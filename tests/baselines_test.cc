/**
 * @file
 * Tests for the pre-characterized baseline schemes: MBIST disable
 * thresholds (including masked faults, which MBIST sees and Killi
 * does not), real-codec correction behaviour on read hits, and
 * voltage-reset recharacterization.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/precharacterized.hh"
#include "cache/geometry.hh"
#include "fault/voltage_model.hh"

using namespace killi;

namespace
{

class NullHost : public L2Backdoor
{
  public:
    void invalidateLine(std::size_t) override {}
    Tick now() const override { return 0; }
};

CacheGeometry
testGeom()
{
    return CacheGeometry{16 * 1024, 16, 64, 2};
}

struct BaselineFixture
{
    BaselineFixture()
        : faults(std::make_unique<FaultMap>(
              testGeom().numLines(), 720, model, 5))
    {
        faults->setVoltage(1.0); // plant deterministically
    }

    void
    use(std::unique_ptr<PrecharacterizedScheme> s)
    {
        scheme = std::move(s);
        scheme->attach(host, testGeom());
    }

    VoltageModel model;
    NullHost host;
    std::unique_ptr<FaultMap> faults;
    std::unique_ptr<PrecharacterizedScheme> scheme;
};

} // namespace

TEST(BaselineTest, FlairDisablesTwoFaultLines)
{
    BaselineFixture f;
    f.faults->plantFault(3, 10, true);
    f.faults->plantFault(5, 10, true);
    f.faults->plantFault(5, 200, false); // masked on zeros — MBIST
                                         // still sees it
    f.use(makeFlair(*f.faults));
    EXPECT_TRUE(f.scheme->canAllocate(3));   // 1 fault: SECDED copes
    EXPECT_FALSE(f.scheme->canAllocate(5));  // 2 faults: disabled
    EXPECT_EQ(f.scheme->disabledLines(), 1u);
}

TEST(BaselineTest, DectedToleratesTwoDisablesThree)
{
    BaselineFixture f;
    f.faults->plantFault(3, 10, true);
    f.faults->plantFault(3, 11, true);
    f.faults->plantFault(4, 10, true);
    f.faults->plantFault(4, 11, true);
    f.faults->plantFault(4, 12, true);
    f.use(makeDectedLine(*f.faults));
    EXPECT_TRUE(f.scheme->canAllocate(3));
    EXPECT_FALSE(f.scheme->canAllocate(4));
}

TEST(BaselineTest, MsEccToleratesElevenFaults)
{
    BaselineFixture f;
    for (unsigned i = 0; i < 11; ++i)
        f.faults->plantFault(6, static_cast<std::uint16_t>(i * 40),
                             true);
    for (unsigned i = 0; i < 12; ++i)
        f.faults->plantFault(7, static_cast<std::uint16_t>(i * 40),
                             true);
    f.use(makeMsEcc(*f.faults));
    EXPECT_TRUE(f.scheme->canAllocate(6));
    EXPECT_FALSE(f.scheme->canAllocate(7));
}

TEST(BaselineTest, SingleFaultCorrectedOnRead)
{
    BaselineFixture f;
    f.faults->plantFault(3, 10, true);
    f.use(makeFlair(*f.faults));
    const BitVec data(512); // zeros: fault visible
    f.scheme->onFill(3, data);
    const AccessResult res = f.scheme->onReadHit(3, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.scheme->stats().counterValue("corrections"), 1u);
    // codec + correction latency.
    EXPECT_EQ(res.extraLatency, 2u);
}

TEST(BaselineTest, MaskedFaultCostsNothing)
{
    BaselineFixture f;
    f.faults->plantFault(3, 10, /*stuck=*/false);
    f.use(makeFlair(*f.faults));
    const BitVec data(512); // zeros match the stuck value
    f.scheme->onFill(3, data);
    const AccessResult res = f.scheme->onReadHit(3, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_EQ(f.scheme->stats().counterValue("corrections"), 0u);
    EXPECT_EQ(res.extraLatency, 0u); // masked: check hidden in pipe
}

TEST(BaselineTest, CheckbitCellFaultHandled)
{
    // SECDED checkbits live in the LV array too (positions 512+).
    BaselineFixture f;
    f.faults->plantFault(3, 515, true);
    f.use(makeFlair(*f.faults));
    BitVec data(512);
    data.set(1); // make the target checkbit 0 so the fault shows
    f.scheme->onFill(3, data);
    const AccessResult res = f.scheme->onReadHit(3, data);
    // Either masked (checkbit happened to be 1) or corrected; never
    // an SDC or a miss for a single fault.
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
}

TEST(BaselineTest, FaultFreeFastPathSkipsCodec)
{
    BaselineFixture f;
    f.use(makeDectedLine(*f.faults));
    const BitVec data(512);
    f.scheme->onFill(9, data);
    const AccessResult res = f.scheme->onReadHit(9, data);
    EXPECT_EQ(res.extraLatency, 0u); // clean path: latency hidden
    EXPECT_FALSE(res.errorInducedMiss);
}

TEST(BaselineTest, DectedCorrectsTwoVisibleFaults)
{
    BaselineFixture f;
    f.faults->plantFault(4, 10, true);
    f.faults->plantFault(4, 300, true);
    f.use(makeDectedLine(*f.faults));
    const BitVec data(512);
    f.scheme->onFill(4, data);
    const AccessResult res = f.scheme->onReadHit(4, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.scheme->stats().counterValue("corrections"), 1u);
}

TEST(BaselineTest, MsEccBehavioralCorrection)
{
    BaselineFixture f;
    for (unsigned i = 0; i < 8; ++i)
        f.faults->plantFault(6, static_cast<std::uint16_t>(i * 60),
                             true);
    f.use(makeMsEcc(*f.faults));
    const BitVec data(512);
    f.scheme->onFill(6, data);
    const AccessResult res = f.scheme->onReadHit(6, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.scheme->stats().counterValue("corrections"), 1u);
}

TEST(BaselineTest, ResetRecharacterizes)
{
    BaselineFixture f;
    f.use(makeFlair(*f.faults));
    EXPECT_EQ(f.scheme->disabledLines(), 0u);
    f.faults->plantFault(8, 10, true);
    f.faults->plantFault(8, 11, true);
    f.scheme->reset();
    EXPECT_FALSE(f.scheme->canAllocate(8));
    EXPECT_EQ(f.scheme->disabledLines(), 1u);
}

TEST(BaselineTest, UsableLinesAccounting)
{
    BaselineFixture f;
    f.faults->plantFault(1, 0, true);
    f.faults->plantFault(1, 1, true);
    f.faults->plantFault(2, 0, true);
    f.faults->plantFault(2, 1, true);
    f.use(makeFlair(*f.faults));
    EXPECT_EQ(f.scheme->usableLines(), testGeom().numLines() - 2);
}

TEST(BaselineTest, SchemeNames)
{
    BaselineFixture f;
    EXPECT_EQ(makeFlair(*f.faults)->name(), "FLAIR");
    EXPECT_EQ(makeSecdedLine(*f.faults)->name(), "SECDED");
    EXPECT_EQ(makeDectedLine(*f.faults)->name(), "DECTED");
    EXPECT_EQ(makeMsEcc(*f.faults)->name(), "MS-ECC");
}
