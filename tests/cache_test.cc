/**
 * @file
 * Tests for the cache models: L1 hit/miss/LRU behaviour and the
 * banked write-through L2 — miss handling, MSHR merging, LRU
 * eviction, write-through semantics, protection-scheme integration
 * (error-induced misses, allocation gating and priorities, SDC
 * accounting, backdoor invalidation).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/l1cache.hh"
#include "cache/l2cache.hh"
#include "cache/protection.hh"
#include "sim/dram.hh"
#include "sim/event_queue.hh"
#include "sim/golden.hh"

using namespace killi;

namespace
{

/** Tiny geometry: 8KB, 4-way, 64B lines, 2 banks -> 32 sets. */
CacheGeometry
tinyGeom()
{
    return CacheGeometry{8 * 1024, 4, 64, 2};
}

/** Scriptable protection for driving the L2's hooks. */
class MockProtection : public ProtectionScheme
{
  public:
    std::string name() const override { return "Mock"; }

    bool
    canAllocate(std::size_t lineId) const override
    {
        return allocatable.empty() || allocatable[lineId];
    }

    int
    allocPriority(std::size_t lineId) const override
    {
        return priorities.empty() ? 0 : priorities[lineId];
    }

    AccessResult
    onReadHit(std::size_t lineId, const BitVec &data) override
    {
        (void)data;
        lastReadLine = lineId;
        ++readHits;
        AccessResult res = nextResult;
        nextResult = AccessResult{};
        return res;
    }

    Cycle
    onFill(std::size_t lineId, const BitVec &data) override
    {
        (void)data;
        ++fills;
        lastFillLine = lineId;
        return 0;
    }

    Cycle
    onEvict(std::size_t lineId, const BitVec &data) override
    {
        (void)data;
        ++evicts;
        lastEvictLine = lineId;
        return 0;
    }

    void onInvalidate(std::size_t lineId) override
    {
        ++invalidates;
        lastInvalidateLine = lineId;
    }

    AccessResult nextResult;
    std::vector<bool> allocatable;
    std::vector<int> priorities;
    unsigned readHits = 0;
    unsigned fills = 0;
    unsigned evicts = 0;
    unsigned invalidates = 0;
    std::size_t lastReadLine = ~0u;
    std::size_t lastFillLine = ~0u;
    std::size_t lastEvictLine = ~0u;
    std::size_t lastInvalidateLine = ~0u;
};

struct L2Fixture
{
    L2Fixture()
        : dram(DramParams{}),
          l2(eq, dram, golden, prot, tinyGeom(), L2Params{})
    {
    }

    /** Issue a read and run to completion; returns response tick. */
    Tick
    readBlocking(Addr addr)
    {
        Tick done = 0;
        bool responded = false;
        l2.read(addr, [&](Tick when) {
            done = when;
            responded = true;
        });
        eq.run();
        EXPECT_TRUE(responded);
        return done;
    }

    EventQueue eq;
    GoldenMemory golden;
    DramModel dram;
    MockProtection prot;
    L2Cache l2;
};

} // namespace

TEST(L1CacheTest, MissThenHit)
{
    L1Cache l1(CacheGeometry{16 * 1024, 4, 64, 1});
    EXPECT_FALSE(l1.lookup(0x1000));
    l1.fill(0x1000);
    EXPECT_TRUE(l1.lookup(0x1000));
    EXPECT_TRUE(l1.lookup(0x1010)); // same line
    EXPECT_FALSE(l1.lookup(0x2000));
}

TEST(L1CacheTest, LruEvictsOldest)
{
    // 4-way set: fill 5 conflicting lines, the first must be gone.
    CacheGeometry g{16 * 1024, 4, 64, 1};
    L1Cache l1(g);
    const std::size_t setStride = g.numSets() * g.lineBytes;
    for (int i = 0; i < 5; ++i)
        l1.fill(0x1000 + i * setStride);
    EXPECT_FALSE(l1.lookup(0x1000));
    for (int i = 1; i < 5; ++i)
        EXPECT_TRUE(l1.lookup(0x1000 + i * setStride));
}

TEST(L1CacheTest, LookupRefreshesRecency)
{
    CacheGeometry g{16 * 1024, 4, 64, 1};
    L1Cache l1(g);
    const std::size_t setStride = g.numSets() * g.lineBytes;
    for (int i = 0; i < 4; ++i)
        l1.fill(0x0 + i * setStride);
    EXPECT_TRUE(l1.lookup(0x0)); // refresh way 0
    l1.fill(4 * setStride);      // evicts way 1 (now LRU)
    EXPECT_TRUE(l1.lookup(0x0));
    EXPECT_FALSE(l1.lookup(1 * setStride));
}

TEST(L1CacheTest, WriteThroughNeverAllocates)
{
    L1Cache l1(CacheGeometry{16 * 1024, 4, 64, 1});
    l1.writeThrough(0x3000);
    EXPECT_FALSE(l1.lookup(0x3000));
}

TEST(L1CacheTest, FlushDropsEverything)
{
    L1Cache l1(CacheGeometry{16 * 1024, 4, 64, 1});
    l1.fill(0x1000);
    l1.flush();
    EXPECT_FALSE(l1.lookup(0x1000));
}

TEST(L2CacheTest, MissThenHitCounters)
{
    L2Fixture f;
    f.readBlocking(0x1000);
    EXPECT_EQ(f.l2.stats().counterValue("read_misses"), 1u);
    EXPECT_TRUE(f.l2.isCached(0x1000));
    f.readBlocking(0x1000);
    EXPECT_EQ(f.l2.stats().counterValue("read_hits"), 1u);
    EXPECT_EQ(f.prot.readHits, 1u);
    EXPECT_EQ(f.prot.fills, 1u);
}

TEST(L2CacheTest, HitIsFasterThanMiss)
{
    L2Fixture f;
    const Tick miss = f.readBlocking(0x40);
    const Tick start = f.eq.curTick();
    const Tick hit = f.readBlocking(0x40);
    EXPECT_GT(miss, 200u);          // paid DRAM latency
    EXPECT_LT(hit - start, 20u);    // tag + data + xbar only
}

TEST(L2CacheTest, MshrMergesConcurrentMisses)
{
    L2Fixture f;
    int responses = 0;
    f.l2.read(0x80, [&](Tick) { ++responses; });
    f.l2.read(0x84, [&](Tick) { ++responses; }); // same line
    f.l2.read(0xB0, [&](Tick) { ++responses; }); // same line
    f.eq.run();
    EXPECT_EQ(responses, 3);
    EXPECT_EQ(f.dram.reads(), 1u);
    EXPECT_EQ(f.prot.fills, 1u);
}

TEST(L2CacheTest, WriteThroughUpdatesMemoryAndLine)
{
    L2Fixture f;
    f.readBlocking(0x100);
    EXPECT_TRUE(f.l2.isCached(0x100));
    f.l2.write(0x100);
    f.eq.run();
    EXPECT_EQ(f.l2.stats().counterValue("write_hits"), 1u);
    EXPECT_EQ(f.dram.writes(), 1u);
    // Memory version bumped: the refetched data must be v1.
    EXPECT_EQ(f.golden.version(0x100), 1u);
}

TEST(L2CacheTest, WriteMissDoesNotAllocate)
{
    L2Fixture f;
    f.l2.write(0x200);
    f.eq.run();
    EXPECT_EQ(f.l2.stats().counterValue("write_misses"), 1u);
    EXPECT_FALSE(f.l2.isCached(0x200));
    EXPECT_EQ(f.dram.writes(), 1u);
}

TEST(L2CacheTest, LruEvictionAcrossWays)
{
    L2Fixture f;
    const CacheGeometry g = tinyGeom();
    const std::size_t setStride = g.numSets() * g.lineBytes;
    // Fill all 4 ways of set 0, then a 5th line evicts the LRU.
    for (int i = 0; i < 4; ++i)
        f.readBlocking(i * setStride);
    f.readBlocking(0); // refresh the first line
    f.readBlocking(4 * setStride);
    EXPECT_EQ(f.l2.stats().counterValue("evictions"), 1u);
    EXPECT_TRUE(f.l2.isCached(0));
    EXPECT_FALSE(f.l2.isCached(1 * setStride));
    EXPECT_EQ(f.prot.evicts, 1u);
    EXPECT_EQ(f.prot.invalidates, 1u);
}

TEST(L2CacheTest, ErrorInducedMissRefetches)
{
    L2Fixture f;
    f.readBlocking(0x40);
    f.prot.nextResult.errorInducedMiss = true;
    const Tick start = f.eq.curTick();
    const Tick resp = f.readBlocking(0x40);
    EXPECT_EQ(f.l2.stats().counterValue("error_misses"), 1u);
    EXPECT_GT(resp - start, 200u); // went to memory
    EXPECT_EQ(f.dram.reads(), 2u);
    EXPECT_TRUE(f.l2.isCached(0x40)); // refilled
    // The drop also notified the scheme.
    EXPECT_GE(f.prot.invalidates, 1u);
}

TEST(L2CacheTest, SdcCounterFollowsProtection)
{
    L2Fixture f;
    f.readBlocking(0x40);
    f.prot.nextResult.sdc = true;
    f.readBlocking(0x40);
    EXPECT_EQ(f.l2.stats().counterValue("sdc"), 1u);
}

TEST(L2CacheTest, ExtraLatencyCharged)
{
    L2Fixture f;
    f.readBlocking(0x40);
    const Tick s1 = f.eq.curTick();
    const Tick fastHit = f.readBlocking(0x40) - s1;
    f.prot.nextResult.extraLatency = 7;
    const Tick s2 = f.eq.curTick();
    const Tick slowHit = f.readBlocking(0x40) - s2;
    EXPECT_EQ(slowHit, fastHit + 7);
}

TEST(L2CacheTest, DisabledSetBypasses)
{
    L2Fixture f;
    const CacheGeometry g = tinyGeom();
    f.prot.allocatable.assign(g.numLines(), true);
    // Disable all 4 ways of the target set.
    const std::size_t set = g.setOf(0x0);
    for (unsigned w = 0; w < g.assoc; ++w)
        f.prot.allocatable[g.lineId(set, w)] = false;
    f.readBlocking(0x0);
    EXPECT_EQ(f.l2.stats().counterValue("bypass_fills"), 1u);
    EXPECT_FALSE(f.l2.isCached(0x0));
    // A second access misses again.
    f.readBlocking(0x0);
    EXPECT_EQ(f.l2.stats().counterValue("read_misses"), 2u);
}

TEST(L2CacheTest, AllocPriorityChoosesPreferredWay)
{
    L2Fixture f;
    const CacheGeometry g = tinyGeom();
    f.prot.priorities.assign(g.numLines(), 0);
    const std::size_t set = g.setOf(0x0);
    f.prot.priorities[g.lineId(set, 2)] = 5;
    f.readBlocking(0x0);
    EXPECT_EQ(f.prot.lastFillLine, g.lineId(set, 2));
}

TEST(L2CacheTest, BackdoorInvalidationDropsLine)
{
    L2Fixture f;
    f.readBlocking(0x40);
    EXPECT_TRUE(f.l2.isCached(0x40));
    f.l2.invalidateLine(f.prot.lastFillLine);
    EXPECT_FALSE(f.l2.isCached(0x40));
    EXPECT_EQ(f.l2.stats().counterValue("prot_invalidations"), 1u);
    // The drop routes through onEvict (classification chance).
    EXPECT_EQ(f.prot.evicts, 1u);
    EXPECT_EQ(f.prot.lastEvictLine, f.prot.lastFillLine);
}

TEST(L2CacheTest, ValidLinesTracksResidency)
{
    L2Fixture f;
    EXPECT_EQ(f.l2.validLines(), 0u);
    f.readBlocking(0x000);
    f.readBlocking(0x040);
    f.readBlocking(0x080);
    EXPECT_EQ(f.l2.validLines(), 3u);
}

TEST(L2CacheTest, BankConflictsSerialize)
{
    // Two concurrent reads to lines in the same bank queue behind
    // one another; reads to different banks do not.
    L2Fixture f;
    f.readBlocking(0x0000);       // warm bank 0
    f.readBlocking(0x0040);       // warm bank 1 (set 1)
    const CacheGeometry g = tinyGeom();
    const std::size_t setStride = g.numSets() * g.lineBytes;

    Tick sameA = 0, sameB = 0;
    f.l2.read(0x0000, [&](Tick t) { sameA = t; });
    f.l2.read(0x0000 + setStride * 0 + 0x1000, [&](Tick t) {
        // 0x1000 = set 0 again (32 sets * 64B = 0x800... pick the
        // same bank via same set parity): same bank as 0x0000.
        sameB = t;
    });
    f.eq.run();
    (void)sameA;
    (void)sameB;
    // The occupancy model guarantees distinct issue slots per bank;
    // with both requests arriving together the second completes no
    // earlier than the first.
    EXPECT_GE(sameB, sameA);
}

namespace
{

struct WbL2Fixture
{
    WbL2Fixture()
        : dram(DramParams{}),
          l2(eq, dram, golden, prot, tinyGeom(),
             [] {
                 L2Params p;
                 p.writePolicy = WritePolicy::WriteBack;
                 return p;
             }())
    {
    }

    Tick
    readBlocking(Addr addr)
    {
        Tick done = 0;
        l2.read(addr, [&](Tick when) { done = when; });
        eq.run();
        return done;
    }

    EventQueue eq;
    GoldenMemory golden;
    DramModel dram;
    MockProtection prot;
    L2Cache l2;
};

} // namespace

TEST(L2WritebackTest, WriteHitDirtiesWithoutMemoryWrite)
{
    WbL2Fixture f;
    f.readBlocking(0x100);
    f.l2.write(0x100);
    f.eq.run();
    EXPECT_EQ(f.l2.stats().counterValue("write_hits"), 1u);
    EXPECT_EQ(f.dram.writes(), 0u); // deferred until eviction
}

TEST(L2WritebackTest, WriteMissAllocates)
{
    WbL2Fixture f;
    f.l2.write(0x200);
    f.eq.run();
    EXPECT_TRUE(f.l2.isCached(0x200)); // write-allocate
    EXPECT_EQ(f.dram.writes(), 0u);
    EXPECT_EQ(f.prot.fills, 1u);
}

TEST(L2WritebackTest, EvictionFlushesDirtyLine)
{
    WbL2Fixture f;
    const CacheGeometry g = tinyGeom();
    const std::size_t setStride = g.numSets() * g.lineBytes;
    f.l2.write(0x0);
    f.eq.run();
    // Evict the dirty line by filling the set's four ways plus one.
    for (int i = 1; i <= 4; ++i)
        f.readBlocking(i * setStride);
    EXPECT_EQ(f.l2.stats().counterValue("writebacks"), 1u);
    EXPECT_EQ(f.dram.writes(), 1u);
    EXPECT_FALSE(f.l2.isCached(0x0));
}

TEST(L2WritebackTest, BackdoorInvalidationFlushesDirtyLine)
{
    WbL2Fixture f;
    f.l2.write(0x140);
    f.eq.run();
    EXPECT_TRUE(f.l2.isCached(0x140));
    f.l2.invalidateLine(f.prot.lastFillLine);
    EXPECT_EQ(f.l2.stats().counterValue("writebacks"), 1u);
    EXPECT_EQ(f.dram.writes(), 1u);
}

TEST(L2WritebackTest, CleanEvictionWritesNothing)
{
    WbL2Fixture f;
    const CacheGeometry g = tinyGeom();
    const std::size_t setStride = g.numSets() * g.lineBytes;
    for (int i = 0; i <= 4; ++i)
        f.readBlocking(i * setStride);
    EXPECT_EQ(f.l2.stats().counterValue("evictions"), 1u);
    EXPECT_EQ(f.dram.writes(), 0u);
}
