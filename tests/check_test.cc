/**
 * @file
 * Tests for the kcheck property-based differential harness: scenario
 * generation determinism and round-tripping, agreement between the
 * independent oracle and the production DFH tables over the whole
 * signal space, zero violations on generated scenario batches, and
 * ddmin minimization via synthetic failure predicates.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/checker.hh"
#include "check/oracle.hh"
#include "check/scenario.hh"
#include "check/shrink.hh"
#include "killi/dfh.hh"

namespace killi::check
{
namespace
{

TEST(ScenarioGenerator, SameSeedSameScenario)
{
    const Scenario a = Scenario::generate(12345);
    const Scenario b = Scenario::generate(12345);
    EXPECT_EQ(a.toJson().toString(), b.toJson().toString());
}

TEST(ScenarioGenerator, DifferentSeedsDiffer)
{
    const Scenario a = Scenario::generate(1);
    const Scenario b = Scenario::generate(2);
    EXPECT_NE(a.toJson().toString(), b.toJson().toString());
}

TEST(ScenarioGenerator, CaseSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 256; ++i)
        seen.insert(caseSeed(1, i));
    EXPECT_EQ(seen.size(), 256u);
    // Distinct master seeds decorrelate the whole sequence.
    EXPECT_NE(caseSeed(1, 0), caseSeed(2, 0));
}

TEST(ScenarioGenerator, JsonRoundTripIsExact)
{
    for (std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull,
                               ~0ull /* full-range uint64 seed */}) {
        const Scenario s = Scenario::generate(seed);
        const std::string text = s.toJson().toString();
        Json doc;
        std::string err;
        ASSERT_TRUE(Json::parse(text, doc, &err)) << err;
        const Scenario back = Scenario::fromJson(doc);
        EXPECT_EQ(back.toJson().toString(), text);
        EXPECT_EQ(back.seed, seed);
    }
}

/**
 * The oracle is an independent transcription of the paper's tables;
 * this sweep ties the two transcriptions together over every signal
 * combination for the baseline configuration (clean line, DECTED
 * extension off), including the read-hit uncorrectable guard and the
 * documented SDC contract per action.
 */
TEST(Oracle, AgreesWithDfhTablesOnCleanLines)
{
    const SParity sps[] = {SParity::Ok, SParity::Single,
                           SParity::Multi};
    const DecodeStatus statuses[] = {
        DecodeStatus::NoError, DecodeStatus::Corrected,
        DecodeStatus::Miscorrected,
        DecodeStatus::DetectedUncorrectable};
    const Dfh states[] = {Dfh::Stable0, Dfh::Initial, Dfh::Stable1};

    for (const Dfh state : states) {
        for (const SParity sp : sps) {
            for (const bool syn : {false, true}) {
                for (const bool gp : {false, true}) {
                    for (const DecodeStatus st : statuses) {
                        for (const bool corrupt : {false, true}) {
                            OracleProbe probe;
                            probe.sp = sp;
                            probe.synNonZero = syn;
                            probe.gpMismatch = gp;
                            probe.eccStatus = st;
                            probe.payloadCorrupt = corrupt;

                            DfhDecision want;
                            switch (state) {
                              case Dfh::Stable0:
                                want = dfhOnStable0(sp);
                                break;
                              case Dfh::Initial:
                                want = dfhOnInitial(sp, syn, gp);
                                break;
                              default:
                                want = dfhOnStable1(sp, syn, gp);
                                break;
                            }
                            // The production read path downgrades a
                            // correction whose syndrome points
                            // outside the codeword.
                            if (want.action ==
                                    DfhAction::CorrectAndSend &&
                                st == DecodeStatus::
                                          DetectedUncorrectable) {
                                want.action = DfhAction::ErrorMiss;
                                want.next = Dfh::Disabled;
                            }
                            bool wantSdc = false;
                            if (want.action == DfhAction::SendClean)
                                wantSdc = corrupt;
                            else if (want.action ==
                                     DfhAction::CorrectAndSend)
                                wantSdc = st ==
                                    DecodeStatus::Miscorrected;

                            const OracleDecision got = oracleReadHit(
                                state, false, false, probe);
                            EXPECT_EQ(got.next, want.next)
                                << dfhName(state);
                            EXPECT_EQ(int(got.action),
                                      int(want.action))
                                << dfhName(state);
                            EXPECT_EQ(got.sdc, wantSdc)
                                << dfhName(state);
                        }
                    }
                }
            }
        }
    }
}

TEST(Oracle, EvictTrainingMatchesInitialRow)
{
    // Eviction training reuses the Initial-row logic but never
    // applies the read-hit uncorrectable guard (the data is leaving
    // anyway) — pin the asymmetry.
    OracleProbe probe;
    probe.sp = SParity::Single;
    probe.synNonZero = true;
    probe.gpMismatch = true;
    probe.eccStatus = DecodeStatus::DetectedUncorrectable;
    const OracleDecision got = oracleEvictTraining(false, probe);
    EXPECT_EQ(got.next, Dfh::Stable1);

    probe.eccStatus = DecodeStatus::Corrected;
    EXPECT_EQ(oracleEvictTraining(false, probe).next, Dfh::Stable1);
}

TEST(Checker, GeneratedScenariosHaveNoViolations)
{
    for (std::size_t i = 0; i < 60; ++i) {
        const Scenario s = Scenario::generate(caseSeed(77, i));
        const CheckResult res = runScenario(s);
        EXPECT_TRUE(res.ok())
            << s.summary() << ": "
            << (res.violations.empty()
                    ? std::string("?")
                    : res.violations.front().message);
    }
}

TEST(Checker, RunScenarioIsDeterministic)
{
    const Scenario s = Scenario::generate(caseSeed(9, 3));
    const CheckResult a = runScenario(s);
    const CheckResult b = runScenario(s);
    EXPECT_EQ(a.toJson().toString(), b.toJson().toString());
}

/** A scenario with known structure for the synthetic shrink tests:
 *  mixed trace with several writes, several planted faults. */
Scenario
syntheticScenario()
{
    Scenario s;
    s.seed = 99;
    for (std::uint16_t i = 0; i < 6; ++i)
        s.faults.push_back({std::uint16_t(i), std::uint16_t(i * 7),
                            bool(i & 1)});
    const OpKind kinds[] = {OpKind::Fill, OpKind::Read, OpKind::Write,
                            OpKind::Touch, OpKind::Evict,
                            OpKind::Scrub};
    for (std::uint16_t i = 0; i < 24; ++i) {
        TraceOp op;
        op.kind = kinds[i % 6];
        op.line = std::uint16_t(i % 8);
        s.trace.push_back(op);
    }
    s.params.ratio = 16;
    s.params.dectedStable = true;
    return s;
}

TEST(Shrink, MinimizesToThePredicateCore)
{
    const Scenario failing = syntheticScenario();
    // "Fails" iff the trace still holds a Write and any fault
    // survives — the minimal scenario is exactly one of each.
    const auto predicate = [](const Scenario &s) {
        bool hasWrite = false;
        for (const TraceOp &op : s.trace)
            hasWrite |= op.kind == OpKind::Write;
        return hasWrite && !s.faults.empty();
    };
    unsigned evals = 0;
    const Scenario shrunk =
        shrinkWith(failing, predicate, 500, evals);
    ASSERT_EQ(shrunk.trace.size(), 1u);
    EXPECT_EQ(int(shrunk.trace[0].kind), int(OpKind::Write));
    EXPECT_EQ(shrunk.faults.size(), 1u);
    // Knobs the predicate ignores are reset to the paper defaults.
    const KilliParams defaults;
    EXPECT_EQ(shrunk.params.ratio, defaults.ratio);
    EXPECT_EQ(shrunk.params.dectedStable, defaults.dectedStable);
    EXPECT_GT(evals, 0u);
    EXPECT_LE(evals, 500u);
}

TEST(Shrink, RespectsTheEvaluationBudget)
{
    const Scenario failing = syntheticScenario();
    unsigned evals = 0;
    const Scenario shrunk = shrinkWith(
        failing, [](const Scenario &) { return true; }, 10, evals);
    EXPECT_LE(evals, 11u); // budget + the initial predicate call
    EXPECT_TRUE(shrunk.trace.empty());
}

TEST(Shrink, DeterministicAcrossRuns)
{
    const Scenario failing = syntheticScenario();
    const auto predicate = [](const Scenario &s) {
        return s.trace.size() >= 3;
    };
    unsigned evalsA = 0, evalsB = 0;
    const Scenario a = shrinkWith(failing, predicate, 300, evalsA);
    const Scenario b = shrinkWith(failing, predicate, 300, evalsB);
    EXPECT_EQ(a.toJson().toString(), b.toJson().toString());
    EXPECT_EQ(evalsA, evalsB);
}

} // namespace
} // namespace killi::check
