/**
 * @file
 * Unit tests for the kcommon utility library: BitVec semantics and
 * invariants, RNG determinism and distribution sanity, Config
 * parsing, stats registry behaviour, JSON documents, and table
 * rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "common/bitvec.hh"
#include "common/config.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace killi;

TEST(BitVecTest, ConstructsZeroed)
{
    BitVec v(523);
    EXPECT_EQ(v.size(), 523u);
    EXPECT_TRUE(v.zero());
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_FALSE(v.parity());
}

TEST(BitVecTest, SetGetFlip)
{
    BitVec v(100);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.flip(0);
    EXPECT_FALSE(v.get(0));
    v.set(99, false);
    EXPECT_FALSE(v.get(99));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVecTest, TailMaskingInvariant)
{
    // Writing a full word into the last partial word must not leak
    // bits beyond size(): popcount and parity depend on it.
    BitVec v(65);
    v.setWord(1, ~std::uint64_t{0});
    EXPECT_EQ(v.popcount(), 1u);
    EXPECT_TRUE(v.get(64));
}

TEST(BitVecTest, XorAndOr)
{
    BitVec a(70), b(70);
    a.set(3);
    a.set(68);
    b.set(3);
    b.set(10);
    const BitVec x = a ^ b;
    EXPECT_FALSE(x.get(3));
    EXPECT_TRUE(x.get(10));
    EXPECT_TRUE(x.get(68));
    const BitVec an = a & b;
    EXPECT_EQ(an.popcount(), 1u);
    EXPECT_TRUE(an.get(3));
    const BitVec o = a | b;
    EXPECT_EQ(o.popcount(), 3u);
}

TEST(BitVecTest, Parity)
{
    BitVec v(523);
    EXPECT_FALSE(v.parity());
    v.set(5);
    EXPECT_TRUE(v.parity());
    v.set(511);
    EXPECT_FALSE(v.parity());
    v.set(522);
    EXPECT_TRUE(v.parity());
}

TEST(BitVecTest, DotParityMatchesExplicitAnd)
{
    Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        BitVec a(523), m(523);
        a.randomize(rng);
        m.randomize(rng);
        EXPECT_EQ(a.dotParity(m), (a & m).parity());
    }
}

TEST(BitVecTest, HammingDistance)
{
    BitVec a(128), b(128);
    a.set(0);
    a.set(100);
    b.set(100);
    b.set(101);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVecTest, OnesPositions)
{
    BitVec v(130);
    v.set(0);
    v.set(64);
    v.set(129);
    const auto ones = v.onesPositions();
    ASSERT_EQ(ones.size(), 3u);
    EXPECT_EQ(ones[0], 0u);
    EXPECT_EQ(ones[1], 64u);
    EXPECT_EQ(ones[2], 129u);
}

TEST(BitVecTest, StringRoundTrip)
{
    Rng rng(11);
    BitVec v(75);
    v.randomize(rng);
    const BitVec back = BitVec::fromString(v.toString());
    EXPECT_EQ(back, v);
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next64(), b.next64());
}

TEST(RngTest, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, BelowIsBounded)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t v = rng.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues reachable
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / double(trials), 0.3, 0.02);
}

TEST(RngTest, PoissonMean)
{
    Rng rng(13);
    double sum = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += rng.poisson(2.5);
    EXPECT_NEAR(sum / trials, 2.5, 0.1);
}

TEST(ConfigTest, ParsesKeyValues)
{
    Config cfg;
    const char *argv[] = {"prog", "l2.size=2097152", "ratio=256",
                          "verbose=true", "scale=0.625"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getInt("l2.size", 0), 2097152);
    EXPECT_EQ(cfg.getInt("ratio", 0), 256);
    EXPECT_TRUE(cfg.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(cfg.getDouble("scale", 0.0), 0.625);
    EXPECT_EQ(cfg.getInt("absent", 17), 17);
    EXPECT_TRUE(cfg.has("ratio"));
    EXPECT_FALSE(cfg.has("absent"));
}

TEST(StatsTest, CountersAccumulate)
{
    StatGroup stats;
    Counter &hits = stats.counter("hits", "cache hits");
    ++hits;
    hits += 4;
    EXPECT_EQ(stats.counterValue("hits"), 5u);
    EXPECT_EQ(stats.counterValue("misses"), 0u);
}

TEST(StatsTest, SameNameSharesCounter)
{
    StatGroup stats;
    ++stats.counter("x");
    ++stats.counter("x");
    EXPECT_EQ(stats.counterValue("x"), 2u);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    StatGroup stats;
    Counter &n = stats.counter("n");
    stats.formula("twice", [&] { return 2.0 * n.value(); });
    n += 3;
    EXPECT_DOUBLE_EQ(stats.formulaValue("twice"), 6.0);
}

TEST(StatsTest, DistributionTracksMinMaxMean)
{
    StatGroup stats;
    Distribution &d = stats.distribution("lat");
    d.sample(2);
    d.sample(10);
    d.sample(6);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
}

TEST(StatsTest, ResetClears)
{
    StatGroup stats;
    stats.counter("c") += 9;
    stats.distribution("d").sample(1.0);
    stats.resetAll();
    EXPECT_EQ(stats.counterValue("c"), 0u);
    EXPECT_EQ(stats.distribution("d").count(), 0u);
}

TEST(StatsTest, DumpContainsEntries)
{
    StatGroup stats;
    stats.counter("l2.hits", "hits") += 12;
    std::ostringstream os;
    stats.dump(os, "sim.");
    EXPECT_NE(os.str().find("sim.l2.hits"), std::string::npos);
    EXPECT_NE(os.str().find("12"), std::string::npos);
}

TEST(TableTest, RendersAligned)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(0.625, 3), "0.625");
    EXPECT_EQ(TextTable::num(1.0, 1), "1.0");
}

TEST(TableTest, MismatchedRowWidthIsFatal)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "");
}

TEST(ConfigTest, MalformedArgumentIsFatal)
{
    Config cfg;
    const char *argv[] = {"prog", "no-equals-sign"};
    EXPECT_DEATH(cfg.parseArgs(2, const_cast<char **>(argv)), "");
}

TEST(ConfigTest, EnvironmentFallback)
{
    setenv("KILLI_TEST_KNOB", "17", 1);
    Config cfg;
    EXPECT_EQ(cfg.getInt("test.knob", 0), 17);
    EXPECT_TRUE(cfg.has("test.knob"));
    unsetenv("KILLI_TEST_KNOB");
}

TEST(ConfigTest, ExplicitSetWinsOverDefault)
{
    Config cfg;
    cfg.set("ratio", "64");
    EXPECT_EQ(cfg.getInt("ratio", 256), 64);
}

TEST(BitVecTest, FromStringRejectsGarbage)
{
    EXPECT_DEATH(BitVec::fromString("01x0"), "");
}

TEST(RngTest, ForkedStreamsDiverge)
{
    Rng parent(5);
    Rng childA = parent.fork();
    Rng childB = parent.fork();
    EXPECT_NE(childA.next64(), childB.next64());
}

TEST(ConfigTest, MalformedIntegerIsFatal)
{
    Config cfg;
    cfg.set("ratio", "25six");
    EXPECT_DEATH(cfg.getInt("ratio", 0), "expects an integer");
}

TEST(ConfigTest, MalformedDoubleIsFatal)
{
    Config cfg;
    cfg.set("scale", "half");
    EXPECT_DEATH(cfg.getDouble("scale", 1.0), "expects a number");
}

TEST(ConfigTest, MalformedBoolIsFatal)
{
    Config cfg;
    cfg.set("verbose", "yep");
    EXPECT_DEATH(cfg.getBool("verbose", false), "expects a boolean");
}

TEST(ConfigTest, TrailingGarbageOnNumberIsFatal)
{
    // strtol would silently accept "42abc" as 42; the strict parser
    // must not.
    Config cfg;
    cfg.set("seed", "42abc");
    EXPECT_DEATH(cfg.getInt("seed", 0), "expects an integer");
}

TEST(StatsTest, EmptyDistributionHasNoExtrema)
{
    Distribution d;
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.count(), 0u);
    EXPECT_TRUE(std::isnan(d.min()));
    EXPECT_TRUE(std::isnan(d.max()));
    d.sample(-4.0);
    EXPECT_FALSE(d.empty());
    EXPECT_DOUBLE_EQ(d.min(), -4.0);
    EXPECT_DOUBLE_EQ(d.max(), -4.0);
    d.reset();
    EXPECT_TRUE(d.empty());
    EXPECT_TRUE(std::isnan(d.min()));
}

TEST(StatsTest, QuantileEdgeCases)
{
    // Empty (and bucketless) distributions have no quantiles.
    Distribution none;
    EXPECT_TRUE(std::isnan(none.quantile(0.5)));
    Distribution noBuckets;
    noBuckets.sample(3.0);
    EXPECT_TRUE(std::isnan(noBuckets.quantile(0.5)));

    // A single sample answers every p with (a bucket-resolution
    // estimate of) itself; p=0 and p=1 clamp to the true extrema
    // when they sit inside the bucket range.
    Distribution one;
    one.initBuckets(0.0, 10.0, 10);
    one.sample(4.5);
    EXPECT_DOUBLE_EQ(one.quantile(0.0), 4.5);
    EXPECT_DOUBLE_EQ(one.quantile(1.0), 4.5);
    const double mid = one.quantile(0.5);
    EXPECT_GE(mid, 4.0);
    EXPECT_LE(mid, 5.0);

    // p outside [0, 1] behaves as the clamped endpoint.
    EXPECT_DOUBLE_EQ(one.quantile(-3.0), one.quantile(0.0));
    EXPECT_DOUBLE_EQ(one.quantile(7.0), one.quantile(1.0));

    // Out-of-range extrema clamp to the configured bucket span:
    // "beyond the top bucket" reads as "at least bucketHigh()".
    Distribution wide;
    wide.initBuckets(0.0, 10.0, 10);
    wide.sample(-5.0);
    wide.sample(5.0);
    wide.sample(25.0);
    EXPECT_DOUBLE_EQ(wide.quantile(0.0), 0.0);   // max(min, lo)
    EXPECT_DOUBLE_EQ(wide.quantile(1.0), 10.0);  // min(max, hi)
    EXPECT_DOUBLE_EQ(wide.quantile(0.99), 10.0); // overflow mass

    // NaN samples must not corrupt the histogram: the negated
    // range comparison routes them to overflow, so quantiles keep
    // answering from the finite mass.
    Distribution withNan;
    withNan.initBuckets(0.0, 10.0, 10);
    withNan.sample(2.5);
    withNan.sample(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(withNan.count(), 2u);
    const double q = withNan.quantile(0.25);
    EXPECT_GE(q, 2.0);
    EXPECT_LE(q, 3.0);
    EXPECT_DOUBLE_EQ(withNan.quantile(0.99), 10.0);
}

TEST(StatsTest, NegativeSamplesKeepTrueExtrema)
{
    // Before the NaN fix min/max started at 0.0, so an all-negative
    // (or all-positive-above-zero) stream reported a bogus extremum.
    Distribution d;
    d.sample(-2.0);
    d.sample(-8.0);
    EXPECT_DOUBLE_EQ(d.min(), -8.0);
    EXPECT_DOUBLE_EQ(d.max(), -2.0);
    Distribution e;
    e.sample(5.0);
    e.sample(3.0);
    EXPECT_DOUBLE_EQ(e.min(), 3.0);
}

TEST(StatsTest, TextDumpMarksEmptyDistributions)
{
    StatGroup stats;
    stats.distribution("lat", "never sampled");
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("no samples"), std::string::npos);
}

TEST(JsonTest, ScalarRoundTrip)
{
    Json doc = Json::object();
    doc.set("i", Json::number(std::int64_t{-42}));
    doc.set("u", Json::number(std::uint64_t{1} << 63));
    doc.set("d", Json::number(0.625));
    doc.set("s", Json::string("hi \"there\"\n"));
    doc.set("t", Json::boolean(true));
    doc.set("n", Json::null());

    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(doc.toString(), back, &err)) << err;
    EXPECT_EQ(back, doc);
    EXPECT_EQ(back.at("i").asInt(), -42);
    EXPECT_DOUBLE_EQ(back.at("d").asDouble(), 0.625);
    EXPECT_EQ(back.at("s").asString(), "hi \"there\"\n");
    EXPECT_TRUE(back.at("n").isNull());
}

TEST(JsonTest, NestedArraysAndObjects)
{
    Json arr = Json::array();
    for (int i = 0; i < 3; ++i) {
        Json entry = Json::object();
        entry.set("idx", Json::number(std::int64_t(i)));
        arr.push(std::move(entry));
    }
    Json doc = Json::object();
    doc.set("rows", std::move(arr));

    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    ASSERT_EQ(back.at("rows").size(), 3u);
    EXPECT_EQ(back.at("rows").at(2).at("idx").asInt(), 2);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zebra", Json::number(std::int64_t{1}));
    doc.set("alpha", Json::number(std::int64_t{2}));
    ASSERT_EQ(doc.members().size(), 2u);
    EXPECT_EQ(doc.members()[0].first, "zebra");
    EXPECT_EQ(doc.members()[1].first, "alpha");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull)
{
    Json doc = Json::object();
    doc.set("bad", Json::number(std::nan("")));
    EXPECT_NE(doc.toString().find("null"), std::string::npos);
    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    EXPECT_TRUE(back.at("bad").isNull());
}

TEST(JsonTest, ParserRejectsMalformedInput)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse("{\"a\": }", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(Json::parse("[1, 2", out, &err));
    EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", out, &err));
    EXPECT_FALSE(Json::parse("", out, &err));
}

TEST(JsonTest, DoubleKindSurvivesRoundTripForWholeValues)
{
    // 2.0 must come back as a Double (not Int) so that results files
    // are stable under rewrite.
    Json doc = Json::number(2.0);
    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    EXPECT_EQ(back.kind(), Json::Kind::Double);
    EXPECT_EQ(back, doc);
}

TEST(JsonTest, FileRoundTripCreatesParentDirs)
{
    const std::string dir = ::testing::TempDir() + "/killi_json_test";
    const std::string path = dir + "/nested/out.json";
    Json doc = Json::object();
    doc.set("answer", Json::number(std::int64_t{42}));
    writeJsonFile(path, doc);
    EXPECT_EQ(readJsonFile(path), doc);
    std::remove(path.c_str());
}

TEST(TableTest, ToJsonKeysRowsByHeader)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"beta", "2"});
    const Json doc = t.toJson();
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.at(0).at("name").asString(), "alpha");
    EXPECT_EQ(doc.at(1).at("value").asString(), "2");
}

// ---- Distribution moments and histograms ---------------------------

TEST(StatsTest, DistributionVarianceAndStddev)
{
    Distribution d;
    d.sample(2);
    d.sample(4);
    d.sample(4);
    d.sample(4);
    d.sample(5);
    d.sample(5);
    d.sample(7);
    d.sample(9);
    // Classic textbook set: population variance 4, stddev 2.
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.variance(), 4.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0);
}

TEST(StatsTest, EmptyDistributionMomentsAreNaN)
{
    const Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_TRUE(std::isnan(d.mean()));
    EXPECT_TRUE(std::isnan(d.variance()));
    EXPECT_TRUE(std::isnan(d.stddev()));
}

TEST(StatsTest, SingleSampleHasZeroVariance)
{
    Distribution d;
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.mean(), 42.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(StatsTest, HistogramBucketsAndOutOfRangeCounts)
{
    Distribution d;
    d.initBuckets(0.0, 8.0, 4); // [0,2) [2,4) [4,6) [6,8)
    ASSERT_TRUE(d.hasBuckets());
    ASSERT_EQ(d.numBuckets(), 4u);
    d.sample(-1.0); // underflow
    d.sample(0.0);  // bucket 0 (half-open low edge included)
    d.sample(1.99); // bucket 0
    d.sample(2.0);  // bucket 1
    d.sample(7.99); // bucket 3
    d.sample(8.0);  // overflow (high edge excluded)
    d.sample(50.0); // overflow
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(2), 0u);
    EXPECT_EQ(d.bucketCount(3), 1u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    // Moments still accumulate over every sample.
    EXPECT_EQ(d.count(), 7u);
}

TEST(StatsTest, HistogramHandlesExtremeAndNanSamples)
{
    // Values whose bucket offset exceeds size_t (and NaN) must land
    // in overflow; the naive double->size_t cast would be UB.
    Distribution d;
    d.initBuckets(0.0, 8.0, 4);
    d.sample(1e300);
    d.sample(std::numeric_limits<double>::infinity());
    d.sample(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(d.overflow(), 3u);
    EXPECT_EQ(d.underflow(), 0u);
    for (std::size_t k = 0; k < d.numBuckets(); ++k)
        EXPECT_EQ(d.bucketCount(k), 0u);
}

TEST(StatsTest, HistogramSurvivesResetAndSerializes)
{
    StatGroup stats;
    Distribution &d = stats.distribution("lat", "hit latency");
    d.initBuckets(0.0, 10.0, 5);
    d.sample(3.0);
    d.sample(-2.0);
    stats.resetAll();
    EXPECT_EQ(d.count(), 0u);
    ASSERT_TRUE(d.hasBuckets()); // layout survives, counts zeroed
    EXPECT_EQ(d.bucketCount(1), 0u);
    EXPECT_EQ(d.underflow(), 0u);

    d.sample(5.0);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("lat.hist"), std::string::npos);
    EXPECT_NE(os.str().find("stddev"), std::string::npos);

    const Json doc = stats.toJson();
    const Json &buckets =
        doc.at("distributions").at("lat").at("buckets");
    EXPECT_DOUBLE_EQ(buckets.at("lo").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(buckets.at("hi").asDouble(), 10.0);
    EXPECT_EQ(buckets.at("counts").at(2).asInt(), 1);
}

TEST(StatsDeathTest, InitBucketsAfterSamplesPanics)
{
    Distribution d;
    d.sample(1.0);
    EXPECT_DEATH(d.initBuckets(0.0, 1.0, 2), "initBuckets");
}

TEST(StatsDeathTest, InitBucketsRejectsDegenerateLayouts)
{
    Distribution d;
    EXPECT_DEATH(d.initBuckets(0.0, 1.0, 0), "zero buckets");
    Distribution d2;
    EXPECT_DEATH(d2.initBuckets(5.0, 5.0, 4), "empty range");
}

// ---- StatGroup name-collision detection ----------------------------

TEST(StatsDeathTest, CrossKindRegistrationPanics)
{
    StatGroup stats;
    stats.counter("x", "a counter");
    EXPECT_DEATH(stats.distribution("x"), "already registered");
    StatGroup stats2;
    stats2.distribution("y");
    EXPECT_DEATH(stats2.formula("y", [] { return 0.0; }),
                 "already registered");
}

TEST(StatsDeathTest, ConflictingDescriptionPanics)
{
    StatGroup stats;
    stats.counter("hits", "cache hits");
    // Same kind, different non-empty description: a second component
    // silently sharing the stat would corrupt both reports.
    EXPECT_DEATH(stats.counter("hits", "something else"),
                 "different");
}

TEST(StatsTest, RefetchWithEmptyDescriptionIsAllowed)
{
    StatGroup stats;
    stats.counter("hits", "cache hits") += 2;
    ++stats.counter("hits"); // plain fetch, no description claim
    EXPECT_EQ(stats.counterValue("hits"), 3u);
}

// ---- logging: pluggable sink, capture, cycle timestamps ------------

TEST(LogTest, CaptureSeesWarnAndInform)
{
    ScopedLogCapture capture;
    warn("deprecated knob %s", "x");
    inform("loaded %d entries", 7);
    EXPECT_TRUE(capture.contains("deprecated knob x"));
    EXPECT_TRUE(capture.contains("loaded 7 entries"));
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[0].rfind("warn:", 0), 0u)
        << capture.messages()[0];
    capture.clear();
    EXPECT_TRUE(capture.messages().empty());
}

TEST(LogTest, CaptureRestoresPreviousSinkOnDestruction)
{
    ScopedLogCapture outer;
    {
        ScopedLogCapture inner;
        warn("inner message");
        EXPECT_TRUE(inner.contains("inner message"));
        EXPECT_FALSE(outer.contains("inner message"));
    }
    warn("outer message");
    EXPECT_TRUE(outer.contains("outer message"));
}

TEST(LogTest, ClockPrefixesMessagesWithTick)
{
    ScopedLogCapture capture;
    {
        Tick t = 1234;
        ScopedLogClock clock([&t] { return t; });
        warn("mid-run condition");
    }
    warn("post-run condition");
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_NE(capture.messages()[0].find("@1234"), std::string::npos)
        << capture.messages()[0];
    EXPECT_EQ(capture.messages()[1].find("@"), std::string::npos)
        << capture.messages()[1];
}

TEST(LogTest, ClockIsPerThread)
{
    // Regression test: concurrent simulations (runner --jobs=N) each
    // install a ScopedLogClock on their own worker thread. The old
    // process-global clock made overlapping scopes restore/delete
    // each other's clocks (use-after-free); now each thread stamps
    // with its own clock and other threads are unaffected.
    ScopedLogCapture capture;
    std::thread a([] {
        ScopedLogClock clock([] { return Tick(111); });
        for (int i = 0; i < 200; ++i)
            warn("from thread a");
    });
    std::thread b([] {
        ScopedLogClock clock([] { return Tick(222); });
        for (int i = 0; i < 200; ++i)
            warn("from thread b");
    });
    a.join();
    b.join();
    // The main thread never installed a clock, so it is unstamped.
    warn("from main");

    const std::vector<std::string> lines = capture.messages();
    ASSERT_EQ(lines.size(), 401u);
    for (const std::string &line : lines) {
        if (line.find("thread a") != std::string::npos)
            EXPECT_NE(line.find("@111"), std::string::npos) << line;
        else if (line.find("thread b") != std::string::npos)
            EXPECT_NE(line.find("@222"), std::string::npos) << line;
        else
            EXPECT_EQ(line.find('@'), std::string::npos) << line;
    }
}

TEST(LogTest, QuietLevelSuppressesWarnings)
{
    ScopedLogCapture capture;
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::Quiet);
    warn("should vanish");
    inform("also vanishes");
    setLogLevel(prev);
    EXPECT_TRUE(capture.messages().empty());
}

TEST(LogTest, SetLogLevelIsThreadSafe)
{
    // The old implementation raced on a plain global; this hammers
    // the accessors from two threads so TSan (CI) can prove the
    // atomic rewrite. Values are restored afterwards.
    const LogLevel prev = logLevel();
    std::thread a([] {
        for (int i = 0; i < 1000; ++i)
            setLogLevel(i % 2 ? LogLevel::Quiet : LogLevel::Normal);
    });
    std::thread b([] {
        for (int i = 0; i < 1000; ++i)
            (void)logLevel();
    });
    a.join();
    b.join();
    setLogLevel(prev);
    SUCCEED();
}

// ---------------------------------------------------------------
// SHA-256 (common/hash.hh) — FIPS 180-4 vectors
// ---------------------------------------------------------------

TEST(HashTest, Sha256KnownVectors)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934c"
              "a495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9c"
              "b410ff61f20015ad");
    EXPECT_EQ(
        sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                  "mnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
        "19db06c1");
}

TEST(HashTest, Sha256MultiBlockAndDeterminism)
{
    // 'a' x 1000 crosses many 64-byte blocks and exercises padding.
    const std::string thousand(1000, 'a');
    const std::string h = sha256Hex(thousand);
    EXPECT_EQ(h.size(), 64u);
    EXPECT_EQ(h, sha256Hex(thousand));
    EXPECT_NE(h, sha256Hex(std::string(999, 'a')));
}

// ---------------------------------------------------------------
// tryReadJsonFile — the daemon's non-fatal config/request reader
// ---------------------------------------------------------------

TEST(JsonFileTest, TryReadMissingFileFailsSoftly)
{
    Json out = Json::string("untouched");
    std::string err;
    EXPECT_FALSE(
        tryReadJsonFile("definitely/not/a/file.json", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(out.asString(), "untouched"); // out left alone
}

TEST(JsonFileTest, TryReadMalformedFileFailsSoftly)
{
    const std::string path = "common_test_malformed.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"broken\": ", f);
        std::fclose(f);
    }
    Json out;
    std::string err;
    EXPECT_FALSE(tryReadJsonFile(path, out, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

TEST(JsonFileTest, TryReadRoundTripsAGoodFile)
{
    const std::string path = "common_test_good.json";
    Json doc = Json::object();
    doc.set("answer", Json::number(std::int64_t(42)));
    writeJsonFile(path, doc);
    Json out;
    ASSERT_TRUE(tryReadJsonFile(path, out));
    EXPECT_EQ(out.at("answer").asInt(), 42);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Distribution::quantile — the daemon's latency percentiles
// ---------------------------------------------------------------

TEST(StatsTest, QuantileIsNanWithoutSamplesOrBuckets)
{
    Distribution bucketless;
    bucketless.sample(1.0);
    EXPECT_TRUE(std::isnan(bucketless.quantile(0.5)));

    Distribution empty;
    empty.initBuckets(0.0, 10.0, 10);
    EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
}

TEST(StatsTest, QuantileInterpolatesUniformFill)
{
    Distribution d;
    d.initBuckets(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(double(i) + 0.5); // one sample per bucket
    const double p50 = d.quantile(0.5);
    EXPECT_NEAR(p50, 50.0, 1.5);
    const double p99 = d.quantile(0.99);
    EXPECT_NEAR(p99, 99.0, 1.5);
    EXPECT_LE(d.quantile(0.0), d.quantile(1.0));
}

TEST(StatsTest, QuantileClampsToConfiguredRange)
{
    Distribution d;
    d.initBuckets(0.0, 10.0, 10);
    d.sample(-5.0);  // underflow: treated as sitting at bucketLow
    d.sample(500.0); // overflow: treated as sitting at bucketHigh
    EXPECT_GE(d.quantile(0.01), 0.0);
    EXPECT_LE(d.quantile(0.99), 10.0);
}
