/**
 * @file
 * Unit tests for the kcommon utility library: BitVec semantics and
 * invariants, RNG determinism and distribution sanity, Config
 * parsing, stats registry behaviour, JSON documents, and table
 * rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/bitvec.hh"
#include "common/config.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace killi;

TEST(BitVecTest, ConstructsZeroed)
{
    BitVec v(523);
    EXPECT_EQ(v.size(), 523u);
    EXPECT_TRUE(v.zero());
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_FALSE(v.parity());
}

TEST(BitVecTest, SetGetFlip)
{
    BitVec v(100);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.flip(0);
    EXPECT_FALSE(v.get(0));
    v.set(99, false);
    EXPECT_FALSE(v.get(99));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVecTest, TailMaskingInvariant)
{
    // Writing a full word into the last partial word must not leak
    // bits beyond size(): popcount and parity depend on it.
    BitVec v(65);
    v.setWord(1, ~std::uint64_t{0});
    EXPECT_EQ(v.popcount(), 1u);
    EXPECT_TRUE(v.get(64));
}

TEST(BitVecTest, XorAndOr)
{
    BitVec a(70), b(70);
    a.set(3);
    a.set(68);
    b.set(3);
    b.set(10);
    const BitVec x = a ^ b;
    EXPECT_FALSE(x.get(3));
    EXPECT_TRUE(x.get(10));
    EXPECT_TRUE(x.get(68));
    const BitVec an = a & b;
    EXPECT_EQ(an.popcount(), 1u);
    EXPECT_TRUE(an.get(3));
    const BitVec o = a | b;
    EXPECT_EQ(o.popcount(), 3u);
}

TEST(BitVecTest, Parity)
{
    BitVec v(523);
    EXPECT_FALSE(v.parity());
    v.set(5);
    EXPECT_TRUE(v.parity());
    v.set(511);
    EXPECT_FALSE(v.parity());
    v.set(522);
    EXPECT_TRUE(v.parity());
}

TEST(BitVecTest, DotParityMatchesExplicitAnd)
{
    Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        BitVec a(523), m(523);
        a.randomize(rng);
        m.randomize(rng);
        EXPECT_EQ(a.dotParity(m), (a & m).parity());
    }
}

TEST(BitVecTest, HammingDistance)
{
    BitVec a(128), b(128);
    a.set(0);
    a.set(100);
    b.set(100);
    b.set(101);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVecTest, OnesPositions)
{
    BitVec v(130);
    v.set(0);
    v.set(64);
    v.set(129);
    const auto ones = v.onesPositions();
    ASSERT_EQ(ones.size(), 3u);
    EXPECT_EQ(ones[0], 0u);
    EXPECT_EQ(ones[1], 64u);
    EXPECT_EQ(ones[2], 129u);
}

TEST(BitVecTest, StringRoundTrip)
{
    Rng rng(11);
    BitVec v(75);
    v.randomize(rng);
    const BitVec back = BitVec::fromString(v.toString());
    EXPECT_EQ(back, v);
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next64(), b.next64());
}

TEST(RngTest, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, BelowIsBounded)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t v = rng.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues reachable
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / double(trials), 0.3, 0.02);
}

TEST(RngTest, PoissonMean)
{
    Rng rng(13);
    double sum = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += rng.poisson(2.5);
    EXPECT_NEAR(sum / trials, 2.5, 0.1);
}

TEST(ConfigTest, ParsesKeyValues)
{
    Config cfg;
    const char *argv[] = {"prog", "l2.size=2097152", "ratio=256",
                          "verbose=true", "scale=0.625"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getInt("l2.size", 0), 2097152);
    EXPECT_EQ(cfg.getInt("ratio", 0), 256);
    EXPECT_TRUE(cfg.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(cfg.getDouble("scale", 0.0), 0.625);
    EXPECT_EQ(cfg.getInt("absent", 17), 17);
    EXPECT_TRUE(cfg.has("ratio"));
    EXPECT_FALSE(cfg.has("absent"));
}

TEST(StatsTest, CountersAccumulate)
{
    StatGroup stats;
    Counter &hits = stats.counter("hits", "cache hits");
    ++hits;
    hits += 4;
    EXPECT_EQ(stats.counterValue("hits"), 5u);
    EXPECT_EQ(stats.counterValue("misses"), 0u);
}

TEST(StatsTest, SameNameSharesCounter)
{
    StatGroup stats;
    ++stats.counter("x");
    ++stats.counter("x");
    EXPECT_EQ(stats.counterValue("x"), 2u);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    StatGroup stats;
    Counter &n = stats.counter("n");
    stats.formula("twice", [&] { return 2.0 * n.value(); });
    n += 3;
    EXPECT_DOUBLE_EQ(stats.formulaValue("twice"), 6.0);
}

TEST(StatsTest, DistributionTracksMinMaxMean)
{
    StatGroup stats;
    Distribution &d = stats.distribution("lat");
    d.sample(2);
    d.sample(10);
    d.sample(6);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
}

TEST(StatsTest, ResetClears)
{
    StatGroup stats;
    stats.counter("c") += 9;
    stats.distribution("d").sample(1.0);
    stats.resetAll();
    EXPECT_EQ(stats.counterValue("c"), 0u);
    EXPECT_EQ(stats.distribution("d").count(), 0u);
}

TEST(StatsTest, DumpContainsEntries)
{
    StatGroup stats;
    stats.counter("l2.hits", "hits") += 12;
    std::ostringstream os;
    stats.dump(os, "sim.");
    EXPECT_NE(os.str().find("sim.l2.hits"), std::string::npos);
    EXPECT_NE(os.str().find("12"), std::string::npos);
}

TEST(TableTest, RendersAligned)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(0.625, 3), "0.625");
    EXPECT_EQ(TextTable::num(1.0, 1), "1.0");
}

TEST(TableTest, MismatchedRowWidthIsFatal)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "");
}

TEST(ConfigTest, MalformedArgumentIsFatal)
{
    Config cfg;
    const char *argv[] = {"prog", "no-equals-sign"};
    EXPECT_DEATH(cfg.parseArgs(2, const_cast<char **>(argv)), "");
}

TEST(ConfigTest, EnvironmentFallback)
{
    setenv("KILLI_TEST_KNOB", "17", 1);
    Config cfg;
    EXPECT_EQ(cfg.getInt("test.knob", 0), 17);
    EXPECT_TRUE(cfg.has("test.knob"));
    unsetenv("KILLI_TEST_KNOB");
}

TEST(ConfigTest, ExplicitSetWinsOverDefault)
{
    Config cfg;
    cfg.set("ratio", "64");
    EXPECT_EQ(cfg.getInt("ratio", 256), 64);
}

TEST(BitVecTest, FromStringRejectsGarbage)
{
    EXPECT_DEATH(BitVec::fromString("01x0"), "");
}

TEST(RngTest, ForkedStreamsDiverge)
{
    Rng parent(5);
    Rng childA = parent.fork();
    Rng childB = parent.fork();
    EXPECT_NE(childA.next64(), childB.next64());
}

TEST(ConfigTest, MalformedIntegerIsFatal)
{
    Config cfg;
    cfg.set("ratio", "25six");
    EXPECT_DEATH(cfg.getInt("ratio", 0), "expects an integer");
}

TEST(ConfigTest, MalformedDoubleIsFatal)
{
    Config cfg;
    cfg.set("scale", "half");
    EXPECT_DEATH(cfg.getDouble("scale", 1.0), "expects a number");
}

TEST(ConfigTest, MalformedBoolIsFatal)
{
    Config cfg;
    cfg.set("verbose", "yep");
    EXPECT_DEATH(cfg.getBool("verbose", false), "expects a boolean");
}

TEST(ConfigTest, TrailingGarbageOnNumberIsFatal)
{
    // strtol would silently accept "42abc" as 42; the strict parser
    // must not.
    Config cfg;
    cfg.set("seed", "42abc");
    EXPECT_DEATH(cfg.getInt("seed", 0), "expects an integer");
}

TEST(StatsTest, EmptyDistributionHasNoExtrema)
{
    Distribution d;
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.count(), 0u);
    EXPECT_TRUE(std::isnan(d.min()));
    EXPECT_TRUE(std::isnan(d.max()));
    d.sample(-4.0);
    EXPECT_FALSE(d.empty());
    EXPECT_DOUBLE_EQ(d.min(), -4.0);
    EXPECT_DOUBLE_EQ(d.max(), -4.0);
    d.reset();
    EXPECT_TRUE(d.empty());
    EXPECT_TRUE(std::isnan(d.min()));
}

TEST(StatsTest, NegativeSamplesKeepTrueExtrema)
{
    // Before the NaN fix min/max started at 0.0, so an all-negative
    // (or all-positive-above-zero) stream reported a bogus extremum.
    Distribution d;
    d.sample(-2.0);
    d.sample(-8.0);
    EXPECT_DOUBLE_EQ(d.min(), -8.0);
    EXPECT_DOUBLE_EQ(d.max(), -2.0);
    Distribution e;
    e.sample(5.0);
    e.sample(3.0);
    EXPECT_DOUBLE_EQ(e.min(), 3.0);
}

TEST(StatsTest, TextDumpMarksEmptyDistributions)
{
    StatGroup stats;
    stats.distribution("lat", "never sampled");
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("no samples"), std::string::npos);
}

TEST(JsonTest, ScalarRoundTrip)
{
    Json doc = Json::object();
    doc.set("i", Json::number(std::int64_t{-42}));
    doc.set("u", Json::number(std::uint64_t{1} << 63));
    doc.set("d", Json::number(0.625));
    doc.set("s", Json::string("hi \"there\"\n"));
    doc.set("t", Json::boolean(true));
    doc.set("n", Json::null());

    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(doc.toString(), back, &err)) << err;
    EXPECT_EQ(back, doc);
    EXPECT_EQ(back.at("i").asInt(), -42);
    EXPECT_DOUBLE_EQ(back.at("d").asDouble(), 0.625);
    EXPECT_EQ(back.at("s").asString(), "hi \"there\"\n");
    EXPECT_TRUE(back.at("n").isNull());
}

TEST(JsonTest, NestedArraysAndObjects)
{
    Json arr = Json::array();
    for (int i = 0; i < 3; ++i) {
        Json entry = Json::object();
        entry.set("idx", Json::number(std::int64_t(i)));
        arr.push(std::move(entry));
    }
    Json doc = Json::object();
    doc.set("rows", std::move(arr));

    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    ASSERT_EQ(back.at("rows").size(), 3u);
    EXPECT_EQ(back.at("rows").at(2).at("idx").asInt(), 2);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zebra", Json::number(std::int64_t{1}));
    doc.set("alpha", Json::number(std::int64_t{2}));
    ASSERT_EQ(doc.members().size(), 2u);
    EXPECT_EQ(doc.members()[0].first, "zebra");
    EXPECT_EQ(doc.members()[1].first, "alpha");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull)
{
    Json doc = Json::object();
    doc.set("bad", Json::number(std::nan("")));
    EXPECT_NE(doc.toString().find("null"), std::string::npos);
    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    EXPECT_TRUE(back.at("bad").isNull());
}

TEST(JsonTest, ParserRejectsMalformedInput)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse("{\"a\": }", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(Json::parse("[1, 2", out, &err));
    EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", out, &err));
    EXPECT_FALSE(Json::parse("", out, &err));
}

TEST(JsonTest, DoubleKindSurvivesRoundTripForWholeValues)
{
    // 2.0 must come back as a Double (not Int) so that results files
    // are stable under rewrite.
    Json doc = Json::number(2.0);
    Json back;
    ASSERT_TRUE(Json::parse(doc.toString(), back, nullptr));
    EXPECT_EQ(back.kind(), Json::Kind::Double);
    EXPECT_EQ(back, doc);
}

TEST(JsonTest, FileRoundTripCreatesParentDirs)
{
    const std::string dir = ::testing::TempDir() + "/killi_json_test";
    const std::string path = dir + "/nested/out.json";
    Json doc = Json::object();
    doc.set("answer", Json::number(std::int64_t{42}));
    writeJsonFile(path, doc);
    EXPECT_EQ(readJsonFile(path), doc);
    std::remove(path.c_str());
}

TEST(TableTest, ToJsonKeysRowsByHeader)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"beta", "2"});
    const Json doc = t.toJson();
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.at(0).at("name").asString(), "alpha");
    EXPECT_EQ(doc.at(1).at("value").asString(), "2");
}
