/**
 * @file
 * Tests for the BCH family (DECTED t=2, TECQED t=3, 6EC7ED t=6):
 * field arithmetic, generator geometry against the paper's checkbit
 * budgets, t-error correction everywhere including checkbits and the
 * extended parity bit, (t+1)-error detection, and probe/decode
 * equivalence.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/gf2m.hh"

using namespace killi;

namespace
{
std::vector<std::size_t>
distinctPositions(Rng &rng, std::size_t count, std::size_t bound)
{
    std::vector<std::size_t> positions;
    while (positions.size() < count) {
        const std::size_t pos = rng.below(bound);
        if (std::find(positions.begin(), positions.end(), pos) ==
            positions.end()) {
            positions.push_back(pos);
        }
    }
    return positions;
}

void
applyErrors(BitVec &data, BitVec &check,
            const std::vector<std::size_t> &positions)
{
    for (const std::size_t pos : positions) {
        if (pos < data.size())
            data.flip(pos);
        else
            check.flip(pos - data.size());
    }
}
} // namespace

TEST(GF2mTest, FieldAxiomsGF1024)
{
    const GF2m field(10);
    EXPECT_EQ(field.order(), 1023u);
    // alpha^order == 1
    EXPECT_EQ(field.alphaPow(1023), 1u);
    EXPECT_EQ(field.alphaPow(0), 1u);
    // Associativity and inverse on random elements.
    Rng rng(1);
    for (int iter = 0; iter < 200; ++iter) {
        const std::uint32_t a =
            static_cast<std::uint32_t>(rng.range(1, 1023));
        const std::uint32_t b =
            static_cast<std::uint32_t>(rng.range(1, 1023));
        const std::uint32_t c =
            static_cast<std::uint32_t>(rng.range(1, 1023));
        EXPECT_EQ(field.mul(field.mul(a, b), c),
                  field.mul(a, field.mul(b, c)));
        EXPECT_EQ(field.mul(a, field.inv(a)), 1u);
        EXPECT_EQ(field.div(field.mul(a, b), b), a);
    }
}

TEST(GF2mTest, LogExpConsistency)
{
    const GF2m field(10);
    Rng rng(2);
    for (int iter = 0; iter < 100; ++iter) {
        const std::int64_t e = static_cast<std::int64_t>(rng.below(5000)) -
            2500;
        const std::uint32_t x = field.alphaPow(e);
        EXPECT_EQ(field.alphaPow(field.logOf(x)), x);
    }
}

TEST(GF2mTest, MulByZero)
{
    const GF2m field(8);
    EXPECT_EQ(field.mul(0, 123), 0u);
    EXPECT_EQ(field.mul(77, 0), 0u);
}

TEST(BchTest, PaperCheckbitBudgets)
{
    // DECTED 21, TECQED 31, 6EC7ED 61 bits over 512 data bits — the
    // widths Killi Table 4 assumes for the ECC cache entries.
    const Bch dected(512, 2, true);
    EXPECT_EQ(dected.checkBits(), 21u);
    EXPECT_EQ(dected.bchCheckBits(), 20u);
    EXPECT_EQ(dected.correctsUpTo(), 2u);
    EXPECT_EQ(dected.detectsUpTo(), 3u);

    const Bch tecqed(512, 3, true);
    EXPECT_EQ(tecqed.checkBits(), 31u);

    const Bch hexa(512, 6, true);
    EXPECT_EQ(hexa.checkBits(), 61u);
}

TEST(BchTest, Names)
{
    EXPECT_EQ(Bch(512, 2, true).name().substr(0, 6), "DECTED");
    EXPECT_EQ(Bch(512, 3, true).name().substr(0, 6), "TECQED");
    EXPECT_EQ(Bch(512, 6, true).name().substr(0, 6), "6EC7ED");
}

TEST(BchTest, CleanCodewordDecodesClean)
{
    const Bch code(512, 2, true);
    Rng rng(3);
    for (int iter = 0; iter < 10; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::NoError);
        EXPECT_EQ(data, golden);
    }
}

class BchCapability
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BchCapability, CorrectsUpToTErrorsAnywhere)
{
    const auto [t, nerr] = GetParam();
    if (nerr > t)
        GTEST_SKIP() << "covered by detection test";
    const Bch code(512, t, true);
    Rng rng(100 * t + nerr);
    for (int iter = 0; iter < 60; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec goldenData = data;
        const BitVec goldenCheck = check;

        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());
        applyErrors(data, check, errs);
        const DecodeResult res = code.decode(data, check);
        if (nerr == 0) {
            EXPECT_EQ(res.status, DecodeStatus::NoError);
        } else {
            EXPECT_EQ(res.status, DecodeStatus::Corrected);
            EXPECT_EQ(res.correctedBits, nerr);
        }
        EXPECT_EQ(data, goldenData);
        EXPECT_EQ(check, goldenCheck);
    }
}

TEST_P(BchCapability, DetectsTPlusOneErrors)
{
    const auto [t, nerr] = GetParam();
    if (nerr != t + 1)
        GTEST_SKIP();
    const Bch code(512, t, true);
    Rng rng(200 * t);
    for (int iter = 0; iter < 60; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());
        applyErrors(data, check, errs);
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::DetectedUncorrectable)
            << t + 1 << " errors must be detected, not corrected";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BchCapability,
    ::testing::Values(std::make_tuple(2u, 0u), std::make_tuple(2u, 1u),
                      std::make_tuple(2u, 2u), std::make_tuple(2u, 3u),
                      std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
                      std::make_tuple(3u, 3u), std::make_tuple(3u, 4u),
                      std::make_tuple(6u, 1u), std::make_tuple(6u, 4u),
                      std::make_tuple(6u, 6u), std::make_tuple(6u, 7u)));

TEST(BchTest, ExtendedParityBitAloneCorrects)
{
    const Bch code(512, 2, true);
    Rng rng(4);
    BitVec data(512);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec goldenCheck = check;
    check.flip(code.checkBits() - 1); // the extended parity bit
    const DecodeResult res = code.decode(data, check);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(check, goldenCheck);
}

TEST(BchTest, DataPlusExtendedParityCorrects)
{
    // One data error plus the extended bit = 2 errors <= t for
    // DECTED; the parity-inconsistency path must absorb it.
    const Bch code(512, 2, true);
    Rng rng(5);
    BitVec data(512);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec goldenData = data;
    const BitVec goldenCheck = check;
    data.flip(100);
    check.flip(code.checkBits() - 1);
    const DecodeResult res = code.decode(data, check);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(data, goldenData);
    EXPECT_EQ(check, goldenCheck);
}

TEST(BchTest, ProbeAgreesWithDecodeWithinDetection)
{
    const Bch code(512, 2, true);
    Rng rng(6);
    for (int iter = 0; iter < 150; ++iter) {
        const std::size_t nerr = rng.below(4); // 0..3 <= detectsUpTo
        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());

        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        applyErrors(data, check, errs);

        const DecodeResult predicted = code.probe(errs);
        const DecodeResult real = code.decode(data, check);
        EXPECT_EQ(real.status, predicted.status);
        if (predicted.status == DecodeStatus::Corrected ||
            predicted.status == DecodeStatus::NoError) {
            EXPECT_EQ(data, golden);
        }
    }
}

TEST(BchTest, ProbeNeverClaimsSuccessBeyondDetection)
{
    // With t+2 or more errors the decoder may miscorrect; probe(),
    // being omniscient, must label those Miscorrected rather than
    // Corrected, and the real decoder must match its belief.
    const Bch code(512, 2, true);
    Rng rng(7);
    unsigned miscorrections = 0;
    for (int iter = 0; iter < 150; ++iter) {
        const std::size_t nerr = 4 + rng.below(3); // 4..6 errors
        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());
        const DecodeResult predicted = code.probe(errs);
        EXPECT_NE(predicted.status, DecodeStatus::NoError);
        EXPECT_NE(predicted.status, DecodeStatus::Corrected);
        if (predicted.status == DecodeStatus::Miscorrected) {
            ++miscorrections;
            BitVec data(512);
            data.randomize(rng);
            BitVec check = code.encode(data);
            const BitVec golden = data;
            applyErrors(data, check, errs);
            const DecodeResult real = code.decode(data, check);
            EXPECT_EQ(real.status, DecodeStatus::Corrected);
            EXPECT_NE(data, golden);
        }
    }
    // At least some 4+-error patterns must alias (sanity that the
    // Miscorrected path is actually exercised).
    EXPECT_GT(miscorrections, 0u);
}

TEST(BchTest, NonExtendedVariantConstructs)
{
    const Bch code(512, 2, false);
    EXPECT_EQ(code.checkBits(), 20u);
    EXPECT_EQ(code.detectsUpTo(), 2u);
    Rng rng(8);
    BitVec data(512);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec golden = data;
    data.flip(17);
    data.flip(400);
    const DecodeResult res = code.decode(data, check);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(data, golden);
}

TEST(BchTest, SmallPayloadGeometry)
{
    // 64-bit payload DECTED fits in GF(2^7): r = 14 + 1.
    const Bch code(64, 2, true);
    EXPECT_LE(code.checkBits(), 15u);
    Rng rng(9);
    BitVec data(64);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec golden = data;
    data.flip(0);
    data.flip(63);
    EXPECT_EQ(code.decode(data, check).status, DecodeStatus::Corrected);
    EXPECT_EQ(data, golden);
}

// --- Bit-sliced vs reference differential -----------------------------

TEST(BchTest, SlicedEncodeMatchesLfsrReference)
{
    Rng rng(31337);
    for (const unsigned t : {2u, 3u, 4u}) {
        for (const std::size_t width : {64u, 128u, 512u}) {
            const Bch code(width, t, true);
            for (int iter = 0; iter < 25; ++iter) {
                BitVec data(width);
                data.randomize(rng);
                const BitVec check = code.encode(data);
                EXPECT_EQ(check, code.encodeReference(data));
                BitVec into(check.size());
                code.encodeInto(data, into);
                EXPECT_EQ(into, check);
            }
        }
    }
    // Non-extended variant shares the slicer minus the parity bit.
    const Bch plain(128, 2, false);
    for (int iter = 0; iter < 25; ++iter) {
        BitVec data(128);
        data.randomize(rng);
        EXPECT_EQ(plain.encode(data), plain.encodeReference(data));
    }
}
