/**
 * @file
 * Tests for Orthogonal Latin Square Codes: construction constraints,
 * the orthogonality property underpinning majority decoding, t-error
 * correction (data and checkbit errors), probe/decode equivalence,
 * and the MS-ECC-strength t=11 instance from paper §5.5.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"
#include "ecc/olsc.hh"

using namespace killi;

namespace
{
std::vector<std::size_t>
distinctPositions(Rng &rng, std::size_t count, std::size_t bound)
{
    std::vector<std::size_t> positions;
    while (positions.size() < count) {
        const std::size_t pos = rng.below(bound);
        if (std::find(positions.begin(), positions.end(), pos) ==
            positions.end()) {
            positions.push_back(pos);
        }
    }
    return positions;
}

void
applyErrors(BitVec &data, BitVec &check,
            const std::vector<std::size_t> &positions)
{
    for (const std::size_t pos : positions) {
        if (pos < data.size())
            data.flip(pos);
        else
            check.flip(pos - data.size());
    }
}
} // namespace

TEST(OlscTest, PaperGeometry)
{
    // MS-ECC-strength instance: m=23, t=11 over a 512-bit line.
    const Olsc code(512, 23, 11);
    EXPECT_EQ(code.dataBits(), 512u);
    EXPECT_EQ(code.checkBits(), 2u * 11 * 23);
    EXPECT_EQ(code.correctsUpTo(), 11u);
}

TEST(OlscTest, RejectsInvalidParameters)
{
    EXPECT_DEATH({ Olsc bad(512, 24, 2); }, "");  // m not prime
    EXPECT_DEATH({ Olsc bad(512, 7, 2); }, "");   // payload > m^2
    EXPECT_DEATH({ Olsc bad(100, 11, 7); }, ""); // 2t > m+1
}

TEST(OlscTest, CleanRoundTrip)
{
    const Olsc code(512, 23, 3);
    Rng rng(1);
    for (int iter = 0; iter < 10; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::NoError);
        EXPECT_EQ(data, golden);
    }
}

class OlscCapability
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(OlscCapability, CorrectsUpToTErrors)
{
    const auto [t, nerr] = GetParam();
    ASSERT_LE(nerr, t);
    const Olsc code(512, 23, t);
    Rng rng(50 * t + nerr);
    for (int iter = 0; iter < 40; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec goldenData = data;

        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());
        applyErrors(data, check, errs);
        const DecodeResult res = code.decode(data, check);
        if (nerr == 0)
            EXPECT_EQ(res.status, DecodeStatus::NoError);
        else
            EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(data, goldenData)
            << nerr << " errors not corrected (t=" << t << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OlscCapability,
    ::testing::Values(std::make_tuple(2u, 1u), std::make_tuple(2u, 2u),
                      std::make_tuple(3u, 3u), std::make_tuple(5u, 5u),
                      std::make_tuple(11u, 7u),
                      std::make_tuple(11u, 11u)));

TEST(OlscTest, CorrectsElevenScatteredErrors)
{
    // The headline MS-ECC capability: 11 random errors in a 64B line.
    const Olsc code(512, 23, 11);
    Rng rng(2);
    for (int iter = 0; iter < 20; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        const auto errs = distinctPositions(rng, 11, 512);
        for (const std::size_t pos : errs)
            data.flip(pos);
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(data, golden);
    }
}

TEST(OlscTest, OrthogonalityOfCheckGroups)
{
    // Any two distinct data bits may share at most one check group
    // class — the property that bounds vote contamination to one
    // equation per foreign error.
    const Olsc code(512, 23, 5);
    Rng rng(3);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t a = rng.below(512);
        std::size_t b = rng.below(512);
        if (a == b)
            continue;
        // Recover co-occurrence through probe: flipping both bits
        // must leave at least 2*2t - 2 failing equations (each bit
        // contributes 2t, overlapping in at most one equation where
        // both cancel).
        const DecodeResult res = code.probe({a, b});
        (void)res;
        // Count directly using encode on unit vectors instead.
        BitVec ua(512), ub(512);
        ua.set(a);
        ub.set(b);
        const BitVec ca = code.encode(ua);
        const BitVec cb = code.encode(ub);
        const BitVec both = ca & cb;
        EXPECT_LE(both.popcount(), 1u)
            << "bits " << a << " and " << b << " share >1 group";
    }
}

TEST(OlscTest, ProbeAgreesWithDecodeWithinCapability)
{
    const Olsc code(512, 23, 3);
    Rng rng(4);
    for (int iter = 0; iter < 100; ++iter) {
        const std::size_t nerr = rng.below(4); // 0..3
        const auto errs =
            distinctPositions(rng, nerr, code.codewordBits());

        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        applyErrors(data, check, errs);

        const DecodeResult predicted = code.probe(errs);
        const DecodeResult real = code.decode(data, check);
        if (nerr == 0) {
            EXPECT_EQ(predicted.status, DecodeStatus::NoError);
        } else {
            EXPECT_EQ(predicted.status, DecodeStatus::Corrected);
            EXPECT_EQ(real.status, DecodeStatus::Corrected);
        }
        EXPECT_EQ(data, golden);
    }
}

TEST(OlscTest, BeyondCapabilityNeverReportsCleanSuccess)
{
    const Olsc code(512, 23, 2);
    Rng rng(5);
    for (int iter = 0; iter < 100; ++iter) {
        const auto errs = distinctPositions(rng, 5, 512);
        const DecodeResult predicted = code.probe(errs);
        EXPECT_NE(predicted.status, DecodeStatus::NoError);
        EXPECT_NE(predicted.status, DecodeStatus::Corrected);
    }
}

TEST(OlscTest, CheckbitErrorsAreRepaired)
{
    const Olsc code(512, 23, 3);
    Rng rng(6);
    BitVec data(512);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec goldenData = data;
    const BitVec goldenCheck = check;
    check.flip(0);
    check.flip(30);
    const DecodeResult res = code.decode(data, check);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(data, goldenData);
    EXPECT_EQ(check, goldenCheck);
}

TEST(OlscTest, SmallerWordInstance)
{
    // A 49-bit payload on m=7 — the per-word organization of the
    // original MS-ECC proposal.
    const Olsc code(49, 7, 2);
    EXPECT_EQ(code.checkBits(), 28u);
    Rng rng(7);
    BitVec data(49);
    data.randomize(rng);
    BitVec check = code.encode(data);
    const BitVec golden = data;
    data.flip(3);
    data.flip(44);
    EXPECT_EQ(code.decode(data, check).status, DecodeStatus::Corrected);
    EXPECT_EQ(data, golden);
}

// --- Bit-sliced vs reference differential -----------------------------

TEST(OlscTest, SlicedEncodeMatchesReference)
{
    Rng rng(90210);
    for (const unsigned t : {2u, 3u, 11u}) {
        const Olsc code(512, 23, t);
        for (int iter = 0; iter < 25; ++iter) {
            BitVec data(512);
            data.randomize(rng);
            const BitVec check = code.encode(data);
            EXPECT_EQ(check, code.encodeReference(data));
            BitVec into(check.size());
            code.encodeInto(data, into);
            EXPECT_EQ(into, check);
        }
    }
}
