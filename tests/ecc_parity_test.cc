/**
 * @file
 * Tests for segmented interleaved parity (Killi §4.1): encode/check
 * round trips, interleaving structure, probe/check equivalence, fold
 * consistency, and the §5.3 detection-capability properties.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/parity.hh"

using namespace killi;

namespace
{
/** The paper's layout: 512-bit line, 16 interleaved segments. */
SegmentedParity
paperParity()
{
    return SegmentedParity(512, 16);
}
} // namespace

TEST(SegmentedParityTest, CleanDataChecksClean)
{
    const SegmentedParity sp = paperParity();
    Rng rng(1);
    for (int iter = 0; iter < 20; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        const BitVec parity = sp.encode(data);
        EXPECT_EQ(parity.size(), 16u);
        const ParityCheck chk = sp.check(data, parity);
        EXPECT_TRUE(chk.ok());
        EXPECT_EQ(chk.mismatchedSegments, 0u);
    }
}

TEST(SegmentedParityTest, InterleavedSegmentAssignment)
{
    const SegmentedParity sp = paperParity();
    // Adjacent bits must land in different segments (soft-error
    // multi-bit clusters are adjacent).
    for (std::size_t i = 0; i + 1 < 512; ++i)
        EXPECT_NE(sp.segmentOf(i), sp.segmentOf(i + 1));
    EXPECT_EQ(sp.segmentOf(0), 0u);
    EXPECT_EQ(sp.segmentOf(17), 1u);
}

TEST(SegmentedParityTest, SingleDataErrorFlagsItsSegment)
{
    const SegmentedParity sp = paperParity();
    Rng rng(2);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    for (const std::size_t pos : {std::size_t{0}, std::size_t{17},
                                  std::size_t{255}, std::size_t{511}}) {
        BitVec corrupted = data;
        corrupted.flip(pos);
        const ParityCheck chk = sp.check(corrupted, parity);
        EXPECT_TRUE(chk.single());
        EXPECT_TRUE(chk.mismatch.get(pos % 16));
    }
}

TEST(SegmentedParityTest, StoredParityBitErrorFlagsItsSegment)
{
    const SegmentedParity sp = paperParity();
    Rng rng(3);
    BitVec data(512);
    data.randomize(rng);
    BitVec parity = sp.encode(data);
    parity.flip(5);
    const ParityCheck chk = sp.check(data, parity);
    EXPECT_TRUE(chk.single());
    EXPECT_TRUE(chk.mismatch.get(5));
}

TEST(SegmentedParityTest, TwoErrorsSameSegmentAreMasked)
{
    // Two flips in one segment cancel: the S.Parity "blind spot" the
    // paper closes with SECDED (Table 2).
    const SegmentedParity sp = paperParity();
    Rng rng(4);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    BitVec corrupted = data;
    corrupted.flip(3);       // segment 3
    corrupted.flip(3 + 16);  // same segment
    const ParityCheck chk = sp.check(corrupted, parity);
    EXPECT_TRUE(chk.ok());
}

TEST(SegmentedParityTest, TwoErrorsDistinctSegmentsDetected)
{
    const SegmentedParity sp = paperParity();
    Rng rng(5);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    BitVec corrupted = data;
    corrupted.flip(3);
    corrupted.flip(4);
    const ParityCheck chk = sp.check(corrupted, parity);
    EXPECT_TRUE(chk.multi());
    EXPECT_EQ(chk.mismatchedSegments, 2u);
}

TEST(SegmentedParityTest, AdjacentMultiBitSoftErrorAlwaysDetected)
{
    // The reason for interleaving: any burst of 2..16 adjacent flips
    // touches that many distinct segments, all flagged.
    const SegmentedParity sp = paperParity();
    Rng rng(6);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    for (unsigned burst = 2; burst <= 16; ++burst) {
        BitVec corrupted = data;
        for (unsigned i = 0; i < burst; ++i)
            corrupted.flip(100 + i);
        const ParityCheck chk = sp.check(corrupted, parity);
        EXPECT_EQ(chk.mismatchedSegments, burst);
    }
}

TEST(SegmentedParityTest, ProbeMatchesCheckOnRandomPatterns)
{
    const SegmentedParity sp = paperParity();
    Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec parity = sp.encode(data);

        const unsigned nerr = static_cast<unsigned>(rng.below(6));
        std::vector<std::size_t> errs;
        BitVec cdata = data;
        BitVec cparity = parity;
        for (unsigned e = 0; e < nerr; ++e) {
            // Distinct positions over the combined 528-bit space.
            std::size_t pos;
            bool dup;
            do {
                pos = rng.below(528);
                dup = false;
                for (const std::size_t p : errs)
                    dup = dup || p == pos;
            } while (dup);
            errs.push_back(pos);
            if (pos < 512)
                cdata.flip(pos);
            else
                cparity.flip(pos - 512);
        }

        const ParityCheck real = sp.check(cdata, cparity);
        const ParityCheck predicted = sp.probe(errs);
        EXPECT_EQ(real.mismatchedSegments, predicted.mismatchedSegments);
        EXPECT_EQ(real.mismatch, predicted.mismatch);
    }
}

TEST(SegmentedParityTest, FoldIsConsistentWithCoarseLayout)
{
    // The 4-bit trained layout must equal parity computed directly
    // over 128-bit-wide interleaved segments.
    const SegmentedParity sp16 = paperParity();
    const SegmentedParity sp4(512, 4);
    Rng rng(8);
    for (int iter = 0; iter < 50; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        const BitVec folded = sp16.fold(sp16.encode(data), 4);
        const BitVec direct = sp4.encode(data);
        EXPECT_EQ(folded, direct);
    }
}

TEST(SegmentedParityTest, FoldRequiresDivisibleGroups)
{
    const SegmentedParity sp = paperParity();
    BitVec parity(16);
    EXPECT_DEATH(
        {
            SegmentedParity local(512, 16);
            local.fold(parity, 5);
        },
        "");
}

TEST(SegmentedParityTest, OddErrorCountAlwaysDetected)
{
    // Property from §5.3: any odd number of errors flips the XOR of
    // all segment parities, so at least one segment must mismatch.
    const SegmentedParity sp = paperParity();
    Rng rng(9);
    for (int iter = 0; iter < 100; ++iter) {
        const unsigned nerr = 2 * static_cast<unsigned>(rng.below(8)) + 1;
        std::vector<std::size_t> errs;
        while (errs.size() < nerr) {
            const std::size_t pos = rng.below(528);
            bool dup = false;
            for (const std::size_t p : errs)
                dup = dup || p == pos;
            if (!dup)
                errs.push_back(pos);
        }
        EXPECT_GE(sp.probe(errs).mismatchedSegments, 1u)
            << "odd error count " << nerr << " went undetected";
    }
}

TEST(SegmentedParityTest, ContiguousLayoutOption)
{
    const SegmentedParity sp(512, 16, /*interleave=*/false);
    EXPECT_FALSE(sp.interleaved());
    // Contiguous: bits 0..31 in segment 0, 32..63 in segment 1, ...
    EXPECT_EQ(sp.segmentOf(0), 0u);
    EXPECT_EQ(sp.segmentOf(31), 0u);
    EXPECT_EQ(sp.segmentOf(32), 1u);
    EXPECT_EQ(sp.segmentOf(511), 15u);

    Rng rng(20);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    EXPECT_TRUE(sp.check(data, parity).ok());
}

TEST(SegmentedParityTest, InterleavingIsWhatCatchesAdjacentBursts)
{
    // The design rationale made measurable: a 2-bit adjacent upset
    // is invisible to contiguous segments (even count in one
    // segment) but flags two segments when interleaved.
    const SegmentedParity inter(512, 16, true);
    const SegmentedParity contig(512, 16, false);
    Rng rng(21);
    BitVec data(512);
    data.randomize(rng);
    const BitVec pInter = inter.encode(data);
    const BitVec pContig = contig.encode(data);

    BitVec corrupted = data;
    corrupted.flip(100);
    corrupted.flip(101); // adjacent pair, same 32-bit block
    EXPECT_EQ(inter.check(corrupted, pInter).mismatchedSegments, 2u);
    EXPECT_EQ(contig.check(corrupted, pContig).mismatchedSegments, 0u)
        << "contiguous parity is blind to the burst";
}

TEST(SegmentedParityTest, ContiguousFoldIsConsistent)
{
    const SegmentedParity fine(512, 16, false);
    const SegmentedParity coarse(512, 4, false);
    Rng rng(22);
    for (int iter = 0; iter < 30; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        EXPECT_EQ(fine.fold(fine.encode(data), 4),
                  coarse.encode(data));
    }
}

// Parameterized sweep over segment counts used by the ablation bench.
class ParitySegmentSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ParitySegmentSweep, EncodeCheckRoundTrip)
{
    const std::size_t segments = GetParam();
    const SegmentedParity sp(512, segments);
    Rng rng(10 + segments);
    BitVec data(512);
    data.randomize(rng);
    const BitVec parity = sp.encode(data);
    EXPECT_EQ(parity.size(), segments);
    EXPECT_TRUE(sp.check(data, parity).ok());

    BitVec corrupted = data;
    corrupted.flip(1);
    EXPECT_TRUE(sp.check(corrupted, parity).single());
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, ParitySegmentSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

// --- Bit-sliced vs reference differential -----------------------------

TEST(SegmentedParityTest, SlicedEncodeMatchesReference)
{
    Rng rng(7777);
    for (const bool interleave : {true, false}) {
        for (const std::size_t segments : {4u, 8u, 16u, 64u}) {
            const SegmentedParity sp(512, segments, interleave);
            for (int iter = 0; iter < 40; ++iter) {
                BitVec data(512);
                data.randomize(rng);
                const BitVec parity = sp.encode(data);
                EXPECT_EQ(parity, sp.encodeReference(data));
                BitVec into(segments);
                sp.encodeInto(data, into);
                EXPECT_EQ(into, parity);

                // check() (the sliced mismatch) against first
                // principles: mismatch = reference parity XOR stored.
                BitVec stored = parity;
                if (rng.bernoulli(0.5))
                    stored.flip(rng.below(segments));
                BitVec corrupted = data;
                for (std::uint64_t f = rng.below(3); f > 0; --f)
                    corrupted.flip(rng.below(512));
                const ParityCheck pc = sp.check(corrupted, stored);
                const BitVec ref = sp.encodeReference(corrupted);
                for (std::size_t s = 0; s < segments; ++s)
                    EXPECT_EQ(pc.mismatch.get(s),
                              ref.get(s) != stored.get(s));
            }
        }
    }
}
