/**
 * @file
 * Tests for the SECDED(523,512) code: construction, encode/decode
 * round trips, single-error correction everywhere (data, checkbits,
 * overall parity bit), double-error detection, probe/decode
 * equivalence, and the Table 2 syndrome/global-parity signals Killi
 * consumes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ecc/secded.hh"

using namespace killi;

namespace
{
/** Draw @p count distinct positions below @p bound. */
std::vector<std::size_t>
distinctPositions(Rng &rng, std::size_t count, std::size_t bound)
{
    std::vector<std::size_t> positions;
    while (positions.size() < count) {
        const std::size_t pos = rng.below(bound);
        if (std::find(positions.begin(), positions.end(), pos) ==
            positions.end()) {
            positions.push_back(pos);
        }
    }
    return positions;
}

/** Apply flips at combined positions to a data/check pair. */
void
applyErrors(BitVec &data, BitVec &check,
            const std::vector<std::size_t> &positions)
{
    for (const std::size_t pos : positions) {
        if (pos < data.size())
            data.flip(pos);
        else
            check.flip(pos - data.size());
    }
}
} // namespace

TEST(SecdedTest, PaperGeometry)
{
    const Secded code(512);
    EXPECT_EQ(code.dataBits(), 512u);
    EXPECT_EQ(code.checkBits(), 11u); // 10 Hamming + overall parity
    EXPECT_EQ(code.codewordBits(), 523u);
    EXPECT_EQ(code.correctsUpTo(), 1u);
    EXPECT_EQ(code.detectsUpTo(), 2u);
    EXPECT_EQ(code.name(), "SECDED(523,512)");
}

TEST(SecdedTest, CleanCodewordDecodesClean)
{
    const Secded code(512);
    Rng rng(1);
    for (int iter = 0; iter < 20; ++iter) {
        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::NoError);
        EXPECT_FALSE(res.syndromeNonZero);
        EXPECT_FALSE(res.globalParityMismatch);
        EXPECT_EQ(data, golden);
    }
}

TEST(SecdedTest, CorrectsEverySingleDataBitError)
{
    const Secded code(512);
    Rng rng(2);
    BitVec data(512);
    data.randomize(rng);
    const BitVec check = code.encode(data);
    for (std::size_t pos = 0; pos < 512; pos += 7) {
        BitVec cdata = data;
        BitVec ccheck = check;
        cdata.flip(pos);
        const DecodeResult res = code.decode(cdata, ccheck);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(res.correctedBits, 1u);
        EXPECT_TRUE(res.syndromeNonZero);
        EXPECT_TRUE(res.globalParityMismatch);
        EXPECT_EQ(cdata, data) << "bit " << pos << " not restored";
        EXPECT_EQ(ccheck, check);
    }
}

TEST(SecdedTest, CorrectsEverySingleCheckbitError)
{
    const Secded code(512);
    Rng rng(3);
    BitVec data(512);
    data.randomize(rng);
    const BitVec check = code.encode(data);
    for (std::size_t c = 0; c < code.checkBits(); ++c) {
        BitVec cdata = data;
        BitVec ccheck = check;
        ccheck.flip(c);
        const DecodeResult res = code.decode(cdata, ccheck);
        EXPECT_EQ(res.status, DecodeStatus::Corrected)
            << "checkbit " << c;
        EXPECT_EQ(cdata, data);
        EXPECT_EQ(ccheck, check) << "checkbit " << c << " not restored";
    }
}

TEST(SecdedTest, DetectsAllDoubleErrors)
{
    const Secded code(512);
    Rng rng(4);
    BitVec data(512);
    data.randomize(rng);
    const BitVec check = code.encode(data);
    for (int iter = 0; iter < 300; ++iter) {
        const auto errs = distinctPositions(rng, 2, 523);
        BitVec cdata = data;
        BitVec ccheck = check;
        applyErrors(cdata, ccheck, errs);
        const DecodeResult res = code.decode(cdata, ccheck);
        EXPECT_EQ(res.status, DecodeStatus::DetectedUncorrectable)
            << "double error at " << errs[0] << "," << errs[1];
        EXPECT_FALSE(res.globalParityMismatch);
    }
}

TEST(SecdedTest, Table2SignalsForKilli)
{
    // Killi reads (syndrome, global parity) per paper Table 2:
    //   no error      -> (zero, match)
    //   single error  -> (non-zero, mismatch)   [correctable]
    //   double error  -> (non-zero, match)      [detect only]
    const Secded code(512);
    Rng rng(5);
    BitVec data(512);
    data.randomize(rng);
    const BitVec check = code.encode(data);

    {
        BitVec d = data;
        BitVec c = check;
        const DecodeResult res = code.decode(d, c);
        EXPECT_FALSE(res.syndromeNonZero);
        EXPECT_FALSE(res.globalParityMismatch);
    }
    {
        BitVec d = data;
        BitVec c = check;
        d.flip(42);
        const DecodeResult res = code.decode(d, c);
        EXPECT_TRUE(res.syndromeNonZero);
        EXPECT_TRUE(res.globalParityMismatch);
    }
    {
        BitVec d = data;
        BitVec c = check;
        d.flip(42);
        d.flip(142);
        const DecodeResult res = code.decode(d, c);
        EXPECT_TRUE(res.syndromeNonZero);
        EXPECT_FALSE(res.globalParityMismatch);
    }
}

TEST(SecdedTest, ProbeAgreesWithDecodeUpToTwoErrors)
{
    const Secded code(512);
    Rng rng(6);
    for (int iter = 0; iter < 400; ++iter) {
        const std::size_t nerr = rng.below(3);
        const auto errs = distinctPositions(rng, nerr, 523);

        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        applyErrors(data, check, errs);

        const DecodeResult predicted = code.probe(errs);
        const DecodeResult real = code.decode(data, check);

        EXPECT_EQ(real.syndromeNonZero, predicted.syndromeNonZero);
        EXPECT_EQ(real.globalParityMismatch,
                  predicted.globalParityMismatch);
        // Within capability probe and decode statuses coincide and
        // the data must be restored when correction is claimed.
        EXPECT_EQ(real.status, predicted.status);
        if (predicted.status == DecodeStatus::Corrected ||
            predicted.status == DecodeStatus::NoError) {
            EXPECT_EQ(data, golden);
        }
    }
}

TEST(SecdedTest, ProbeFlagsTripleErrorMiscorrections)
{
    // Three errors exceed SECDED: the believed action (often a
    // "single-bit correction") is wrong. probe() must never report
    // Corrected/NoError, and when it reports Miscorrected the real
    // decoder must indeed leave corrupted data behind.
    const Secded code(512);
    Rng rng(7);
    unsigned miscorrections = 0;
    for (int iter = 0; iter < 400; ++iter) {
        const auto errs = distinctPositions(rng, 3, 523);

        const DecodeResult predicted = code.probe(errs);
        EXPECT_NE(predicted.status, DecodeStatus::NoError);
        EXPECT_NE(predicted.status, DecodeStatus::Corrected);

        BitVec data(512);
        data.randomize(rng);
        BitVec check = code.encode(data);
        const BitVec golden = data;
        applyErrors(data, check, errs);
        const DecodeResult real = code.decode(data, check);

        if (predicted.status == DecodeStatus::Miscorrected) {
            ++miscorrections;
            // The real decoder believes it succeeded...
            EXPECT_NE(real.status, DecodeStatus::DetectedUncorrectable);
            // ...but the data is silently wrong.
            EXPECT_NE(data, golden);
        } else {
            EXPECT_EQ(real.status, DecodeStatus::DetectedUncorrectable);
        }
    }
    // Triple errors overwhelmingly alias to single-error syndromes.
    EXPECT_GT(miscorrections, 0u);
}

TEST(SecdedTest, OtherGeometriesConstruct)
{
    // Tag arrays and narrower payloads use smaller instances.
    for (const std::size_t k : {8u, 32u, 64u, 128u, 256u}) {
        const Secded code(k);
        EXPECT_EQ(code.dataBits(), k);
        Rng rng(100 + k);
        BitVec data(k);
        data.randomize(rng);
        BitVec check = code.encode(data);
        BitVec golden = data;
        data.flip(k / 2);
        const DecodeResult res = code.decode(data, check);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(data, golden);
    }
}

TEST(SecdedTest, SixtyFourBitWordUsesEightCheckbits)
{
    // The classic (72,64) geometry emerges from the construction.
    const Secded code(64);
    EXPECT_EQ(code.checkBits(), 8u);
    EXPECT_EQ(code.codewordBits(), 72u);
}

// Exhaustive single-error sweep over the whole combined codeword as
// a parameterized suite (keeps failures attributable to a position).
class SecdedExhaustiveSingle : public ::testing::TestWithParam<int>
{
};

TEST_P(SecdedExhaustiveSingle, EveryPositionCorrects)
{
    static const Secded code(512);
    static Rng rng(8);
    static BitVec data = [] {
        BitVec d(512);
        d.randomize(rng);
        return d;
    }();
    static const BitVec check = code.encode(data);

    const std::size_t offset = static_cast<std::size_t>(GetParam());
    for (std::size_t pos = offset; pos < 523; pos += 8) {
        const DecodeResult predicted = code.probe({pos});
        EXPECT_EQ(predicted.status, DecodeStatus::Corrected)
            << "position " << pos;
        BitVec cdata = data;
        BitVec ccheck = check;
        if (pos < 512)
            cdata.flip(pos);
        else
            ccheck.flip(pos - 512);
        const DecodeResult real = code.decode(cdata, ccheck);
        EXPECT_EQ(real.status, DecodeStatus::Corrected)
            << "position " << pos;
        EXPECT_EQ(cdata, data) << "position " << pos;
        EXPECT_EQ(ccheck, check) << "position " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(Offsets, SecdedExhaustiveSingle,
                         ::testing::Range(0, 8));

// --- Bit-sliced vs reference differential -----------------------------

TEST(SecdedTest, SlicedPathsMatchReferenceBitForBit)
{
    // The table-driven encode/decode (the production path) must be
    // bit-identical to the per-bit mask reference it replaced, at
    // every width and under every corruption pattern within (and a
    // bit beyond) the code's detection capability.
    Rng rng(2024);
    for (const std::size_t width : {8u, 11u, 32u, 64u, 120u, 256u,
                                    512u}) {
        const Secded code(width);
        for (int iter = 0; iter < 40; ++iter) {
            BitVec data(width);
            data.randomize(rng);
            const BitVec check = code.encode(data);
            EXPECT_EQ(check, code.encodeReference(data));
            BitVec into(check.size());
            code.encodeInto(data, into);
            EXPECT_EQ(into, check);

            const std::size_t flips = rng.below(4); // 0..3
            const auto positions = distinctPositions(
                rng, flips, width + check.size());
            BitVec dA = data, cA = check;
            applyErrors(dA, cA, positions);
            BitVec dB = dA, cB = cA;
            const DecodeResult a = code.decode(dA, cA);
            const DecodeResult b = code.decodeReference(dB, cB);
            EXPECT_EQ(a.status, b.status);
            EXPECT_EQ(a.correctedBits, b.correctedBits);
            EXPECT_EQ(a.syndromeNonZero, b.syndromeNonZero);
            EXPECT_EQ(a.globalParityMismatch, b.globalParityMismatch);
            EXPECT_EQ(dA, dB);
            EXPECT_EQ(cA, cB);
        }
    }
}
