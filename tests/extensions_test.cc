/**
 * @file
 * Tests for the extension features beyond the paper's headline
 * configuration: transient (soft-error) injection and its Table 2
 * handling, the scrubber (footnote 7), and §5.6.1 write-back support
 * with DFH-graded dirty-line protection.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/precharacterized.hh"
#include "fault/fault_map.hh"
#include "fault/voltage_model.hh"
#include "gpu/gpu_system.hh"
#include "killi/killi.hh"

using namespace killi;

namespace
{

class MockHost : public L2Backdoor
{
  public:
    void
    invalidateLine(std::size_t lineId) override
    {
        invalidated.push_back(lineId);
    }

    Tick now() const override { return 0; }

    std::vector<std::size_t> invalidated;
};

CacheGeometry
testGeom()
{
    return CacheGeometry{16 * 1024, 16, 64, 2};
}

struct Rig
{
    explicit Rig(KilliParams kp = KilliParams{})
        : faults(std::make_unique<FaultMap>(
              testGeom().numLines(), 720, model, 77))
    {
        faults->setVoltage(1.0);
        prot = std::make_unique<KilliProtection>(*faults, kp);
        prot->attach(host, testGeom());
    }

    BitVec
    zeros() const
    {
        return BitVec(512);
    }

    VoltageModel model;
    MockHost host;
    std::unique_ptr<FaultMap> faults;
    std::unique_ptr<KilliProtection> prot;
};

} // namespace

// --- Transient faults in the fault map --------------------------------

TEST(TransientTest, VisibleRegardlessOfStoredValue)
{
    Rig r;
    r.faults->injectTransient(0, 100);
    BitVec zeros(512), ones(512);
    for (std::size_t i = 0; i < 512; ++i)
        ones.set(i);
    for (const BitVec *data : {&zeros, &ones}) {
        const auto errs = r.faults->visibleErrors(0, *data);
        ASSERT_EQ(errs.size(), 1u);
        EXPECT_EQ(errs[0], 100u);
    }
}

TEST(TransientTest, ClearedOnRewrite)
{
    Rig r;
    r.faults->injectTransient(0, 100);
    r.faults->clearTransients(0);
    EXPECT_TRUE(r.faults->visibleErrors(0, BitVec(512)).empty());
}

TEST(TransientTest, DoubleUpsetTogglesBack)
{
    Rig r;
    r.faults->injectTransient(0, 100);
    r.faults->injectTransient(0, 100);
    EXPECT_TRUE(r.faults->visibleErrors(0, BitVec(512)).empty());
}

TEST(TransientTest, StuckCellsAreImmune)
{
    Rig r;
    r.faults->plantFault(0, 100, /*stuck=*/false);
    r.faults->injectTransient(0, 100);
    // Stored 0 over stuck-0: masked, and the transient cannot flip a
    // defect-held cell.
    EXPECT_TRUE(r.faults->visibleErrors(0, BitVec(512)).empty());
}

TEST(TransientTest, CountFaultsExcludesTransients)
{
    Rig r;
    r.faults->injectTransient(0, 5);
    EXPECT_EQ(r.faults->countFaults(0, 512), 0u);
}

// --- Killi's transient handling (Table 2 transient rows) --------------

TEST(TransientTest, Stable0TransientRaisesErrorMissAndRelearns)
{
    Rig r;
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onReadHit(0, data);
    ASSERT_EQ(r.prot->dfhOf(0), Dfh::Stable0);

    r.faults->injectTransient(0, 33);
    const AccessResult res = r.prot->onReadHit(0, data);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(r.prot->dfhOf(0), Dfh::Initial);

    // The refetch rewrites the cells (the L2 clears transients) and
    // the line proves clean again.
    r.faults->clearTransients(0);
    r.prot->onFill(0, data);
    r.prot->onReadHit(0, data);
    EXPECT_EQ(r.prot->dfhOf(0), Dfh::Stable0);
}

TEST(TransientTest, Stable1TransientCorrectedInPlace)
{
    Rig r;
    r.faults->plantFault(1, 10, true);
    const BitVec data = r.zeros();
    r.prot->onFill(1, data);
    r.prot->onReadHit(1, data);
    ASSERT_EQ(r.prot->dfhOf(1), Dfh::Stable1);

    // Write data that masks the LV fault, then hit a transient: the
    // single visible error is corrected by the stored checkbits.
    BitVec masking = r.zeros();
    masking.set(10); // matches the stuck-at-1 cell
    r.prot->onWriteHit(1, masking);
    r.faults->injectTransient(1, 200);
    const AccessResult res = r.prot->onReadHit(1, masking);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
}

TEST(TransientTest, MultiBitBurstDetectedByInterleavedParity)
{
    // Two adjacent upsets land in different folded groups: the
    // multi-bit soft-error case interleaving exists for.
    Rig r;
    const BitVec data = r.zeros();
    r.prot->onFill(2, data);
    r.prot->onReadHit(2, data);
    r.faults->injectTransient(2, 64);
    r.faults->injectTransient(2, 65);
    const AccessResult res = r.prot->onReadHit(2, data);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(r.prot->dfhOf(2), Dfh::Disabled);
}

TEST(ScrubberTest, ReclaimsTransientDisabledLines)
{
    Rig r;
    const BitVec data = r.zeros();
    r.prot->onFill(2, data);
    r.prot->onReadHit(2, data);
    r.faults->injectTransient(2, 64);
    r.faults->injectTransient(2, 65);
    r.prot->onReadHit(2, data); // disables
    ASSERT_EQ(r.prot->dfhOf(2), Dfh::Disabled);
    ASSERT_FALSE(r.prot->canAllocate(2));

    r.prot->onMaintenance();
    EXPECT_EQ(r.prot->dfhOf(2), Dfh::Initial);
    EXPECT_TRUE(r.prot->canAllocate(2));
    EXPECT_EQ(r.prot->stats().counterValue("scrub_reclaims"), 1u);
}

TEST(ScrubberTest, PersistentMultiFaultLinesRedisable)
{
    Rig r;
    r.faults->plantFault(3, 10, true);
    r.faults->plantFault(3, 11, true);
    const BitVec data = r.zeros();
    r.prot->onFill(3, data);
    r.prot->onReadHit(3, data);
    ASSERT_EQ(r.prot->dfhOf(3), Dfh::Disabled);

    r.prot->onMaintenance();
    EXPECT_EQ(r.prot->dfhOf(3), Dfh::Initial);
    // First use re-discovers the persistent population.
    r.prot->onFill(3, data);
    r.prot->onReadHit(3, data);
    EXPECT_EQ(r.prot->dfhOf(3), Dfh::Disabled);
}

// --- End-to-end soft-error injection -----------------------------------

TEST(SoftErrorSimTest, InjectionRaisesErrorMissesNotSdc)
{
    GpuParams gp;
    gp.l2.softErrorRatePerBitCycle = 2e-9; // aggressive, for signal
    gp.l2.maintenanceInterval = 100000;
    VoltageModel model;
    FaultMap faults(gp.l2Geom.numLines(), 720, model, 9);
    faults.setVoltage(0.625);

    KilliProtection prot(faults, KilliParams{});
    const auto wl = makeWorkload("dgemm", 0.1);
    GpuSystem sys(gp, prot, *wl, &faults);
    const RunResult r = sys.run();
    EXPECT_GT(sys.l2().stats().counterValue("soft_errors"), 0u);
    EXPECT_GT(r.l2ErrorMisses, 0u);
    // Single-bit upsets are always detected (parity) or corrected
    // (SECDED); only the 5.6.2 persistent-fault window may leak.
    EXPECT_LT(r.sdc, 50u);
}

TEST(SoftErrorSimTest, RequiresFaultMap)
{
    GpuParams gp;
    gp.l2.softErrorRatePerBitCycle = 1e-9;
    FaultFreeProtection prot;
    const auto wl = makeWorkload("dgemm", 0.01);
    EXPECT_DEATH({ GpuSystem sys(gp, prot, *wl, nullptr); }, "");
}

// --- Write-back mode (§5.6.1) ------------------------------------------

namespace
{

struct WbRig
{
    explicit WbRig(double voltage, KilliParams kp = [] {
        KilliParams k;
        k.writebackMode = true;
        return k;
    }())
        : faults(gp.l2Geom.numLines(), 720, model, 55)
    {
        gp.l2.writePolicy = WritePolicy::WriteBack;
        faults.setVoltage(voltage);
        prot = std::make_unique<KilliProtection>(faults, kp);
    }

    GpuParams gp;
    VoltageModel model;
    FaultMap faults;
    std::unique_ptr<KilliProtection> prot;
};

} // namespace

TEST(WritebackTest, DirtyLinesFlushOnlyAtEviction)
{
    WbRig rig(1.0);
    const auto wl = makeWorkload("dgemm", 0.05);
    GpuSystem sys(rig.gp, *rig.prot, *wl, &rig.faults);
    const RunResult r = sys.run();

    // Write-back coalesces stores: memory writes are write-backs,
    // strictly fewer than the stores issued.
    const std::uint64_t stores = r.l2WriteHits + r.l2WriteMisses;
    EXPECT_GT(stores, 0u);
    EXPECT_GT(sys.l2().stats().counterValue("writebacks"), 0u);
    EXPECT_LT(r.dramWrites, stores);
    EXPECT_EQ(r.sdc, 0u);
    EXPECT_EQ(sys.l2().stats().counterValue("wb_data_loss"), 0u);
}

TEST(WritebackTest, WriteThroughWritesEveryStore)
{
    // Control experiment: the same workload under write-through
    // sends every store to memory.
    VoltageModel model;
    GpuParams gp; // default write-through
    FaultMap faults(gp.l2Geom.numLines(), 720, model, 55);
    faults.setVoltage(1.0);
    KilliProtection prot(faults, KilliParams{});
    const auto wl = makeWorkload("dgemm", 0.05);
    GpuSystem sys(gp, prot, *wl, &faults);
    const RunResult r = sys.run();
    EXPECT_EQ(r.dramWrites, r.l2WriteHits + r.l2WriteMisses);
}

TEST(WritebackTest, DirtyStable0LineGetsCheckbits)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onReadHit(0, data);
    ASSERT_EQ(r.prot->dfhOf(0), Dfh::Stable0);
    EXPECT_EQ(r.prot->eccCache().find(0), nullptr);

    // The store dirties the line: SECDED checkbits appear on demand.
    r.prot->onWriteHit(0, data);
    EXPECT_NE(r.prot->eccCache().find(0), nullptr);
}

TEST(WritebackTest, DirtyTransientCorrectedWithoutRefetch)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onReadHit(0, data);
    r.prot->onWriteHit(0, data); // dirty
    r.faults->injectTransient(0, 123);

    const AccessResult res = r.prot->onReadHit(0, data);
    EXPECT_FALSE(res.errorInducedMiss) << "dirty data must not be "
                                          "dropped";
    EXPECT_FALSE(res.sdc);
    // The line is now suspected faulty.
    EXPECT_EQ(r.prot->dfhOf(0), Dfh::Stable1);
}

TEST(WritebackTest, DirtyStable1CarriesDected)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    r.faults->plantFault(1, 10, true);
    const BitVec data = r.zeros();
    r.prot->onFill(1, data);
    r.prot->onReadHit(1, data);
    ASSERT_EQ(r.prot->dfhOf(1), Dfh::Stable1);

    // Dirty the line, then add a transient on top of the LV fault:
    // two visible errors — beyond SECDED, within DECTED.
    r.prot->onWriteHit(1, data);
    r.faults->injectTransient(1, 300);
    const AccessResult res = r.prot->onReadHit(1, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(r.prot->dfhOf(1), Dfh::Stable1);
}

TEST(WritebackTest, CleanWritebackReportsClean)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onWriteHit(0, data);
    const WritebackOutcome out = r.prot->onWriteback(0, data);
    EXPECT_TRUE(out.clean);
}

TEST(WritebackTest, CorrectableWritebackIsRepaired)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onWriteHit(0, data);
    r.faults->injectTransient(0, 42);
    const WritebackOutcome out = r.prot->onWriteback(0, data);
    EXPECT_TRUE(out.clean);
    EXPECT_GT(out.extraCost, 0u);
}

TEST(WritebackTest, UncorrectableWritebackIsLoss)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(0, data);
    r.prot->onWriteHit(0, data);
    // Two upsets on a dirty b'00 line: beyond SECDED.
    r.faults->injectTransient(0, 42);
    r.faults->injectTransient(0, 300);
    const WritebackOutcome out = r.prot->onWriteback(0, data);
    EXPECT_FALSE(out.clean);
}

TEST(WritebackTest, EndToEndAtOperatingVoltage)
{
    WbRig rig(0.625);
    const auto wl = makeWorkload("spmv", 0.1);
    GpuSystem sys(rig.gp, *rig.prot, *wl, &rig.faults);
    const RunResult r = sys.run();
    EXPECT_EQ(sys.l2().stats().counterValue("wb_data_loss"), 0u);
    EXPECT_EQ(sys.l2().stats().counterValue("dirty_error_loss"), 0u);
    EXPECT_LT(r.sdc, 50u); // 5.6.2 window only
}

TEST(WritebackTest, PrecharacterizedWritebackProbe)
{
    VoltageModel model;
    FaultMap faults(testGeom().numLines(), 720, model, 3);
    faults.setVoltage(1.0);
    faults.plantFault(4, 10, true);
    auto scheme = makeFlair(faults);
    MockHost host;
    scheme->attach(host, testGeom());
    const BitVec data(512);
    scheme->onFill(4, data);
    const WritebackOutcome ok = scheme->onWriteback(4, data);
    EXPECT_TRUE(ok.clean); // single fault: SECDED repairs it
    faults.injectTransient(4, 400);
    const WritebackOutcome bad = scheme->onWriteback(4, data);
    EXPECT_FALSE(bad.clean); // double error: detect-only
}

// --- DFH bookkeeping regressions ---------------------------------------

TEST(ScrubberTest, ScrubReclaimIsAFirstClassTransition)
{
    // Regression: the scrubber used to mutate state[] directly,
    // bypassing noteTransition — no t_11_01 counter (the string
    // lookup silently auto-created an unregistered one) and no
    // per-line dfh.transition trace event.
    Rig r;
    TraceSink sink;
    r.prot->setTrace(&sink);
    const BitVec data = r.zeros();
    r.prot->onFill(2, data);
    r.prot->onReadHit(2, data);
    r.faults->injectTransient(2, 64);
    r.faults->injectTransient(2, 65);
    r.prot->onReadHit(2, data); // disables
    ASSERT_EQ(r.prot->dfhOf(2), Dfh::Disabled);

    r.prot->onMaintenance();
    EXPECT_EQ(r.prot->dfhOf(2), Dfh::Initial);
    EXPECT_EQ(r.prot->stats().counterValue("scrub_reclaims"), 1u);
    EXPECT_EQ(r.prot->stats().counterValue("t_11_01"), 1u);

    bool sawScrubTransition = false;
    for (const TraceEvent &ev : sink.events()) {
        if (std::string(ev.name) != "dfh.transition")
            continue;
        for (unsigned a = 0; a < ev.nargs; ++a) {
            if (std::string(ev.args[a].key) == "trigger" &&
                std::string(ev.args[a].s) == "scrub")
                sawScrubTransition = true;
        }
    }
    EXPECT_TRUE(sawScrubTransition);
}

TEST(WritebackTest, CleanDirtyWritebackReleasesEccEntry)
{
    // Regression: onWriteback cleared the dirty bit but never
    // released the ECC-cache entry a dirty b'00 line acquired at its
    // store (§5.6.1) — stranded capacity, and a latent panic under
    // KILLI_CHECK_INVARIANTS on the next hook.
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(5, data);
    r.prot->onReadHit(5, data); // clean training read -> b'00
    ASSERT_EQ(r.prot->dfhOf(5), Dfh::Stable0);
    r.prot->onWriteHit(5, data); // dirty: acquires SECDED entry
    ASSERT_NE(r.prot->eccCache().find(5), nullptr);

    const WritebackOutcome wb = r.prot->onWriteback(5, data);
    EXPECT_TRUE(wb.clean);
    EXPECT_EQ(r.prot->dfhOf(5), Dfh::Stable0);
    EXPECT_EQ(r.prot->eccCache().find(5), nullptr);
    // The next hook's invariant sweep must pass (panics if the entry
    // had been stranded, when KILLI_CHECK_INVARIANTS is on).
    r.prot->onReadHit(5, data);
}

TEST(WritebackTest, CorrectedDirtyWritebackReclassifiesLine)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(6, data);
    r.prot->onReadHit(6, data); // -> b'00
    r.prot->onWriteHit(6, data);
    r.faults->injectTransient(6, 100); // single flip: correctable

    const WritebackOutcome wb = r.prot->onWriteback(6, data);
    EXPECT_TRUE(wb.clean);
    EXPECT_EQ(wb.extraCost, kp.correctionLatency);
    // Mirrors decideDirty: a b'00 line revealing a correctable error
    // is reclassified b'10.
    EXPECT_EQ(r.prot->dfhOf(6), Dfh::Stable1);
    EXPECT_EQ(r.prot->stats().counterValue("t_00_10"), 1u);
}

TEST(WritebackTest, UncorrectableDirtyWritebackDisablesLine)
{
    KilliParams kp;
    kp.writebackMode = true;
    Rig r(kp);
    const BitVec data = r.zeros();
    r.prot->onFill(7, data);
    r.prot->onReadHit(7, data); // -> b'00
    r.prot->onWriteHit(7, data);
    r.faults->injectTransient(7, 100);
    r.faults->injectTransient(7, 200); // double flip: uncorrectable

    const WritebackOutcome wb = r.prot->onWriteback(7, data);
    // The only copy is unrecoverable: the host sees !clean and the
    // line disables, exactly as decideDirty rules on the read path.
    EXPECT_FALSE(wb.clean);
    EXPECT_EQ(r.prot->dfhOf(7), Dfh::Disabled);
    EXPECT_EQ(r.prot->eccCache().find(7), nullptr);
    EXPECT_FALSE(r.prot->canAllocate(7));
}
