/**
 * @file
 * Tests for the voltage model and fault maps: calibration anchors,
 * monotonicity in voltage and frequency, persistence, stuck-at
 * masking semantics, and agreement between sampled fault maps and
 * the analytical line-fault distribution (Fig. 2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "fault/fault_map.hh"
#include "fault/fault_model.hh"
#include "fault/scenario_spec.hh"
#include "fault/sweep_engine.hh"
#include "fault/voltage_model.hh"

using namespace killi;

TEST(VoltageModelTest, CalibrationAnchors)
{
    const VoltageModel vm;
    EXPECT_NEAR(vm.pCell(0.625), 3.0e-4, 3e-6);
    EXPECT_NEAR(vm.pCell(0.600), 6.2e-3, 6.2e-5);
    EXPECT_NEAR(vm.pCell(0.575), 1.41e-2, 1.41e-4);
    EXPECT_NEAR(vm.pCell(0.500), 5.0e-2, 5e-4);
    EXPECT_LT(vm.pCell(0.700), 2e-9);
}

TEST(VoltageModelTest, MonotoneDecreasingInVoltage)
{
    const VoltageModel vm;
    double prev = 1.0;
    for (double v = 0.45; v <= 1.01; v += 0.005) {
        const double p = vm.pCell(v);
        EXPECT_LE(p, prev) << "pCell not monotone at v=" << v;
        prev = p;
    }
}

TEST(VoltageModelTest, MonotoneIncreasingInFrequency)
{
    const VoltageModel vm;
    // The DAC'17 measurements: failures at f occur at all higher f.
    EXPECT_LT(vm.pCell(0.625, 0.4), vm.pCell(0.625, 1.0));
    EXPECT_LT(vm.pCell(0.6, 0.4), vm.pCell(0.6, 0.7));
    EXPECT_LT(vm.pCell(0.6, 0.7), vm.pCell(0.6, 1.0));
}

TEST(VoltageModelTest, ExponentialRiseBelowKnee)
{
    // Section 3: below 0.675xVDD failure probability rises
    // exponentially — each 25mV step should multiply pCell.
    const VoltageModel vm;
    const double r1 = vm.pCell(0.650) / vm.pCell(0.675);
    const double r2 = vm.pCell(0.625) / vm.pCell(0.650);
    EXPECT_GT(r1, 3.0);
    EXPECT_GT(r2, 3.0);
}

TEST(VoltageModelTest, ReadWriteSplit)
{
    const VoltageModel vm;
    const double p = vm.pCell(0.6);
    EXPECT_NEAR(vm.pRead(0.6) + vm.pWrite(0.6), p, 1e-12);
    EXPECT_GT(vm.pWrite(0.6), vm.pRead(0.6)); // writeability worse
}

TEST(VoltageModelTest, PaperLineFaultStatement)
{
    // Section 3: at 1GHz and 0.625xVDD, >95% of rows have fewer
    // than two failures (523-bit SECDED codeword rows).
    const VoltageModel vm;
    const double fewer2 = vm.pLineFaults(523, 0, 0.625) +
        vm.pLineFaults(523, 1, 0.625);
    EXPECT_GT(fewer2, 0.95);
}

TEST(VoltageModelTest, LineFaultDistributionSumsToOne)
{
    const VoltageModel vm;
    double sum = 0.0;
    for (unsigned k = 0; k <= 30; ++k)
        sum += vm.pLineFaults(512, k, 0.575);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_NEAR(vm.pLineAtLeast(512, 2, 0.575) +
                    vm.pLineFaults(512, 0, 0.575) +
                    vm.pLineFaults(512, 1, 0.575),
                1.0, 1e-9);
}

namespace
{
FaultMap
smallMap(double voltage, std::uint64_t seed = 7)
{
    static const VoltageModel vm;
    FaultMap fm(2048, 720, vm, seed);
    fm.setVoltage(voltage);
    return fm;
}
} // namespace

TEST(FaultMapTest, NominalVoltageIsEssentiallyFaultFree)
{
    FaultMap fm = smallMap(1.0);
    const auto hist = fm.histogram(523);
    EXPECT_EQ(hist.one + hist.twoPlus, 0u);
}

TEST(FaultMapTest, MonotoneInVoltage)
{
    // Every cell faulty at v must be faulty at all lower voltages.
    static const VoltageModel vm;
    FaultMap fm(1024, 720, vm, 11);
    for (double vHigh : {0.65, 0.625, 0.6}) {
        const double vLow = vHigh - 0.025;
        fm.setVoltage(vHigh);
        std::vector<std::vector<std::uint16_t>> before(1024);
        for (std::size_t i = 0; i < 1024; ++i) {
            for (const FaultCell &c : fm.lineFaults(i))
                before[i].push_back(c.bit);
        }
        fm.setVoltage(vLow);
        for (std::size_t i = 0; i < 1024; ++i) {
            for (const std::uint16_t bit : before[i]) {
                bool still = false;
                for (const FaultCell &c : fm.lineFaults(i))
                    still = still || c.bit == bit;
                EXPECT_TRUE(still)
                    << "fault " << bit << " of line " << i
                    << " vanished when lowering " << vHigh << "->"
                    << vLow;
            }
        }
    }
}

TEST(FaultMapTest, PersistentAcrossQueries)
{
    FaultMap fm = smallMap(0.6);
    const auto &a = fm.lineFaults(5);
    const auto &b = fm.lineFaults(5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].bit, b[i].bit);
}

TEST(FaultMapTest, SeedsProduceDifferentDies)
{
    FaultMap a = smallMap(0.575, 1);
    FaultMap b = smallMap(0.575, 2);
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.numLines(); ++i)
        differing += a.lineFaults(i).size() != b.lineFaults(i).size();
    EXPECT_GT(differing, 0u);
}

TEST(FaultMapTest, Table7CapacityAnchors)
{
    // MS-ECC usable capacity (<= 11 faults over its 710-bit line):
    // 99.8% at 0.6xVDD and 69.6% at 0.575xVDD (paper Table 7).
    const VoltageModel vm;
    const auto capacity = [&](double v) {
        double sum = 0.0;
        for (unsigned k = 0; k <= 11; ++k)
            sum += vm.pLineFaults(710, k, v);
        return sum;
    };
    EXPECT_NEAR(capacity(0.600), 0.998, 0.003);
    EXPECT_NEAR(capacity(0.575), 0.696, 0.03);
}

TEST(FaultMapTest, HistogramMatchesBinomial)
{
    // The sampled per-line fault distribution must match the
    // analytical model (Fig. 2 consistency), within sampling noise.
    static const VoltageModel vm;
    FaultMap fm(32768, 720, vm, 3);
    fm.setVoltage(0.6);
    const auto hist = fm.histogram(512);
    const double n = 32768.0;
    EXPECT_NEAR(hist.zero / n, vm.pLineFaults(512, 0, 0.6), 0.02);
    EXPECT_NEAR(hist.one / n, vm.pLineFaults(512, 1, 0.6), 0.02);
    EXPECT_NEAR(hist.twoPlus / n, vm.pLineAtLeast(512, 2, 0.6), 0.02);
}

TEST(FaultMapTest, StuckAtMaskingSemantics)
{
    // A stuck cell corrupts data only when the stored bit differs
    // from the stuck value: write the stuck value -> no visible
    // error; write the complement -> visible.
    FaultMap fm = smallMap(0.55);
    bool exercised = false;
    for (std::size_t line = 0; line < fm.numLines() && !exercised;
         ++line) {
        for (const FaultCell &cell : fm.lineFaults(line)) {
            if (cell.bit >= 512)
                continue;
            BitVec match(512);
            match.set(cell.bit, cell.stuckValue);
            BitVec clash(512);
            clash.set(cell.bit, !cell.stuckValue);

            const auto visMatch = fm.visibleErrors(line, match);
            for (const std::size_t pos : visMatch)
                EXPECT_NE(pos, std::size_t{cell.bit});

            const auto visClash = fm.visibleErrors(line, clash);
            bool found = false;
            for (const std::size_t pos : visClash)
                found = found || pos == cell.bit;
            EXPECT_TRUE(found);
            exercised = true;
            break;
        }
    }
    EXPECT_TRUE(exercised) << "no faulty line found at 0.55xVDD";
}

TEST(FaultMapTest, TwoPartVisibleErrorsMatchesConcatenation)
{
    FaultMap fm = smallMap(0.5);
    Rng rng(9);
    for (std::size_t line = 0; line < 64; ++line) {
        BitVec data(512);
        data.randomize(rng);
        BitVec meta(21);
        meta.randomize(rng);

        BitVec combined(533);
        for (std::size_t i = 0; i < 512; ++i)
            combined.set(i, data.get(i));
        for (std::size_t i = 0; i < 21; ++i)
            combined.set(512 + i, meta.get(i));

        EXPECT_EQ(fm.visibleErrors(line, combined),
                  fm.visibleErrors(line, data, meta));
    }
}

TEST(FaultMapTest, ApplyFaultsFlipsExactlyVisibleErrors)
{
    FaultMap fm = smallMap(0.5);
    Rng rng(10);
    for (std::size_t line = 0; line < 128; ++line) {
        BitVec data(720);
        data.randomize(rng);
        const auto vis = fm.visibleErrors(line, data);
        BitVec mutated = data;
        const unsigned flips = fm.applyFaults(line, mutated);
        EXPECT_EQ(flips, vis.size());
        EXPECT_EQ(mutated.hammingDistance(data), vis.size());
        for (const std::size_t pos : vis)
            EXPECT_NE(mutated.get(pos), data.get(pos));
    }
}

TEST(FaultMapTest, CountFaultsRespectsPrefix)
{
    FaultMap fm = smallMap(0.5);
    for (std::size_t line = 0; line < 256; ++line) {
        EXPECT_LE(fm.countFaults(line, 512), fm.countFaults(line, 720));
        EXPECT_EQ(fm.countFaults(line, 720), fm.lineFaults(line).size());
    }
}

// --- Geometric skip sampling -------------------------------------------

TEST(FaultMapTest, SkipSamplingMatchesPerBitDistribution)
{
    // The skip sampler replaces one uniform draw per bit with one
    // draw per fault; the resulting population must stay marginally
    // Bernoulli(pCell) per cell with conditionally uniform
    // thresholds. Compare aggregate counts and the per-voltage
    // activation curve against the per-bit reference over many dies.
    const VoltageModel model;
    const std::size_t numLines = 2048, lineBits = 720;
    std::size_t faultsSkip = 0, faultsRef = 0;
    std::size_t activeSkip = 0, activeRef = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        FaultMap skip(numLines, lineBits, model, seed, 1.0,
                      FaultSampling::Skip);
        FaultMap ref(numLines, lineBits, model, seed ^ 0xabcdef, 1.0,
                     FaultSampling::PerBit);
        skip.setVoltage(VoltageModel::minVoltage());
        ref.setVoltage(VoltageModel::minVoltage());
        for (std::size_t l = 0; l < numLines; ++l) {
            faultsSkip += skip.countFaults(l, lineBits);
            faultsRef += ref.countFaults(l, lineBits);
        }
        skip.setVoltage(0.60);
        ref.setVoltage(0.60);
        for (std::size_t l = 0; l < numLines; ++l) {
            activeSkip += skip.countFaults(l, lineBits);
            activeRef += ref.countFaults(l, lineBits);
        }
    }
    // Populations are in the tens of thousands; 5% agreement is far
    // beyond any plausible sampler bug while stable across seeds.
    EXPECT_GT(faultsSkip, 1000u);
    EXPECT_NEAR(double(faultsSkip), double(faultsRef),
                0.05 * double(faultsRef));
    EXPECT_GT(activeSkip, 100u);
    EXPECT_NEAR(double(activeSkip), double(activeRef),
                0.10 * double(activeRef));
}

TEST(FaultMapTest, SampledPopulationIsSortedByBit)
{
    const VoltageModel model;
    for (const FaultSampling mode :
         {FaultSampling::Skip, FaultSampling::PerBit}) {
        FaultMap map(512, 720, model, 42, 1.0, mode);
        map.setVoltage(VoltageModel::minVoltage());
        for (std::size_t l = 0; l < map.numLines(); ++l) {
            const auto &cells = map.lineFaults(l);
            for (std::size_t i = 1; i < cells.size(); ++i)
                ASSERT_LT(cells[i - 1].bit, cells[i].bit)
                    << "line " << l;
        }
    }
}

TEST(FaultMapTest, PlantFaultKeepsSortInvariant)
{
    const VoltageModel model;
    FaultMap map(4, 720, model, 7);
    map.setVoltage(1.0); // planted faults only
    // Out-of-order plants must land in sorted position (isStuck and
    // countFaults binary-search / early-exit over the sorted set).
    map.plantFault(0, 300, true);
    map.plantFault(0, 10, false);
    map.plantFault(0, 650, true);
    map.plantFault(0, 200, false);
    const auto &cells = map.lineFaults(0);
    for (std::size_t i = 1; i < cells.size(); ++i)
        ASSERT_LT(cells[i - 1].bit, cells[i].bit);
    // visibleErrors consults isStuck for transient suppression: a
    // transient on a stuck cell must stay suppressed after the
    // sorted insertions.
    map.injectTransient(0, 300);
    BitVec ones(720);
    for (std::size_t i = 0; i < 720; ++i)
        ones.set(i);
    const auto errs = map.visibleErrors(0, ones);
    // stuck-false cells at 10 and 200 flip stored ones; stuck-true
    // at 300/650 match; the transient on stuck 300 is suppressed.
    EXPECT_EQ(errs.size(), 2u);
    EXPECT_TRUE(map.countFaults(0, 201) == 2u);
}

// --- Incremental voltage stepping --------------------------------------

namespace
{

/** Bit-identity between two maps' active sets: same cells, same
 *  order, same payloads, at every line. */
void
expectActiveIdentical(const FaultMap &a, const FaultMap &b,
                      const std::string &ctx)
{
    ASSERT_EQ(a.numLines(), b.numLines()) << ctx;
    for (std::size_t l = 0; l < a.numLines(); ++l) {
        const auto &ca = a.lineFaults(l);
        const auto &cb = b.lineFaults(l);
        ASSERT_EQ(ca.size(), cb.size()) << ctx << " line " << l;
        for (std::size_t i = 0; i < ca.size(); ++i) {
            ASSERT_EQ(ca[i].bit, cb[i].bit)
                << ctx << " line " << l << " cell " << i;
            ASSERT_EQ(ca[i].threshold, cb[i].threshold)
                << ctx << " line " << l << " cell " << i;
            ASSERT_EQ(ca[i].stuckValue, cb[i].stuckValue)
                << ctx << " line " << l << " cell " << i;
            ASSERT_EQ(ca[i].kind, cb[i].kind)
                << ctx << " line " << l << " cell " << i;
        }
    }
}

/** Deep copy of a map's active sets (the callback's map is stepped
 *  in place, so order-comparison tests must snapshot). */
std::vector<std::vector<FaultCell>>
snapshotActive(const FaultMap &map)
{
    std::vector<std::vector<FaultCell>> out(map.numLines());
    for (std::size_t l = 0; l < map.numLines(); ++l)
        out[l] = map.lineFaults(l);
    return out;
}

} // namespace

TEST(FaultMapTest, EqualVoltageResetIsIdempotentNoOp)
{
    // Warm-store hits and replayed jobs legitimately re-apply the
    // point voltage: a bit-exact re-set must be accepted as a no-op
    // under the declared monotone regime, not treated as a raise.
    static const VoltageModel vm;
    FaultMap fm(512, 720, vm, 21);
    fm.declareMonotoneVoltage(true);
    fm.setVoltage(0.6);
    const auto before = snapshotActive(fm);
    fm.setVoltage(0.6);
    EXPECT_EQ(fm.voltage(), 0.6);
    const auto after = snapshotActive(fm);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t l = 0; l < before.size(); ++l) {
        ASSERT_EQ(before[l].size(), after[l].size()) << "line " << l;
        for (std::size_t i = 0; i < before[l].size(); ++i)
            EXPECT_EQ(before[l][i].bit, after[l][i].bit);
    }
}

TEST(FaultMapTest, IncrementalSteppingMatchesColdFiltering)
{
    // Same seed, same population; one map steps by threshold deltas,
    // the other cold-filters. Every point must be bit-identical.
    static const VoltageModel vm;
    FaultMap inc(1024, 720, vm, 17);
    FaultMap cold(1024, 720, vm, 17);
    inc.declareMonotoneVoltage(true);
    cold.declareMonotoneVoltage(true);
    ASSERT_TRUE(inc.enableIncrementalVoltage());
    EXPECT_TRUE(inc.incrementalVoltage());
    for (const double v :
         {0.70, 0.675, 0.65, 0.625, 0.60, 0.59, 0.575, 0.55, 0.50}) {
        inc.setVoltage(v);
        cold.setVoltage(v);
        expectActiveIdentical(inc, cold,
                              "v=" + std::to_string(v));
    }
}

TEST(FaultMapTest, IncrementalTieAtThresholdMatchesCold)
{
    // A cell whose threshold sits exactly at a sweep point's pCell:
    // cold filtering's strict `threshold < p` leaves it inactive at
    // equality, and the incremental walk must land the tie on the
    // same side (both compare the float threshold promoted to
    // double against the same p).
    static const VoltageModel vm;
    const float tie = static_cast<float>(vm.pCell(0.600, 1.0));
    std::vector<std::vector<FaultCell>> pop(4);
    pop[1].push_back({100, tie, true, FaultKind::Writeability});
    pop[1].push_back({200, tie / 2, false, FaultKind::ReadDisturb});
    pop[2].push_back({50, tie * 4, true, FaultKind::Writeability});
    FaultMap inc(pop, 720, vm);
    FaultMap cold(pop, 720, vm);
    inc.declareMonotoneVoltage(true);
    cold.declareMonotoneVoltage(true);
    ASSERT_TRUE(inc.enableIncrementalVoltage());

    // Bisect for a voltage whose pCell equals the float-rounded
    // threshold exactly (pCell is continuous and monotone, so the
    // boundary is reachable to the last ulp if representable).
    const double target = double(tie);
    double lo = 0.55, hi = 0.65; // pCell(lo) > target > pCell(hi)
    double vStar = 0.600;
    bool exact = false;
    for (int it = 0; it < 200 && !exact; ++it) {
        const double mid = lo + (hi - lo) / 2;
        if (mid == lo || mid == hi)
            break;
        const double p = vm.pCell(mid, 1.0);
        if (p == target) {
            vStar = mid;
            exact = true;
        } else if (p > target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    std::vector<double> ladder = {0.650, 0.625, 0.610};
    ladder.push_back(exact ? vStar : 0.600);
    ladder.push_back(0.590);
    ladder.push_back(0.575);
    for (const double v : ladder) {
        inc.setVoltage(v);
        cold.setVoltage(v);
        expectActiveIdentical(inc, cold, "v=" + std::to_string(v));
        if (exact && v == vStar) {
            // Exactly at the threshold: strict < excludes the cell
            // in both derivations.
            EXPECT_EQ(inc.lineFaults(1).size(), 1u);
            EXPECT_EQ(inc.lineFaults(1)[0].bit, 200);
        }
    }
    // Below the boundary the tied cell is active in both.
    EXPECT_EQ(inc.lineFaults(1).size(), 2u);
    EXPECT_EQ(cold.lineFaults(1).size(), 2u);
}

TEST(FaultMapTest, PlantFaultInvalidatesIncrementalIndex)
{
    static const VoltageModel vm;
    FaultMap inc(1024, 720, vm, 23);
    FaultMap cold(1024, 720, vm, 23);
    inc.declareMonotoneVoltage(true);
    cold.declareMonotoneVoltage(true);
    inc.setVoltage(0.65);
    cold.setVoltage(0.65);
    ASSERT_TRUE(inc.enableIncrementalVoltage());
    inc.setVoltage(0.625);
    cold.setVoltage(0.625);
    // Mutating the population must not leave the delta path reading
    // stale (line, cell) references.
    inc.plantFault(3, 17, true);
    cold.plantFault(3, 17, true);
    for (const double v : {0.60, 0.575}) {
        inc.setVoltage(v);
        cold.setVoltage(v);
        expectActiveIdentical(inc, cold, "v=" + std::to_string(v));
    }
}

// --- Voltage-sweep engine ----------------------------------------------

TEST(SweepEngineTest, IncrementalMatchesColdAtEveryPoint)
{
    const std::vector<double> points = {0.70, 0.675, 0.65, 0.625,
                                        0.60, 0.575, 0.55};
    for (const char *name : {"iid", "clustered", "burst"}) {
        ScenarioSpec spec;
        spec.model = name;
        spec.seed = 13;
        const auto model = FaultModel::fromScenario(spec);
        std::size_t visited = 0;
        const VoltageSweepStats st = runVoltageSweep(
            *model, 256, 720, points,
            [&](std::size_t idx, double v, FaultMap &map) {
                ++visited;
                EXPECT_EQ(v, points[idx]);
                const auto cold = model->buildMapAt(256, 720, v);
                expectActiveIdentical(
                    map, *cold,
                    std::string(name) + " v=" + std::to_string(v));
            });
        EXPECT_TRUE(st.incremental) << name;
        EXPECT_EQ(st.points, points.size());
        EXPECT_EQ(st.coldActivations, 1u) << name;
        EXPECT_EQ(visited, points.size());
    }
}

TEST(SweepEngineTest, SinglePointSweep)
{
    ScenarioSpec spec;
    spec.seed = 3;
    const auto model = FaultModel::fromScenario(spec);
    std::size_t visited = 0;
    const VoltageSweepStats st = runVoltageSweep(
        *model, 128, 720, {0.6},
        [&](std::size_t idx, double v, FaultMap &map) {
            ++visited;
            EXPECT_EQ(idx, 0u);
            EXPECT_EQ(v, 0.6);
            const auto cold = model->buildMapAt(128, 720, 0.6);
            expectActiveIdentical(map, *cold, "single point");
        });
    EXPECT_EQ(st.points, 1u);
    EXPECT_TRUE(st.incremental);
    EXPECT_EQ(st.coldActivations, 1u);
    EXPECT_EQ(visited, 1u);
}

TEST(SweepEngineTest, AscendingAndDescendingOrdersAgree)
{
    // The engine internally visits monotone sweeps from the highest
    // voltage down; the caller's point order must not change any
    // per-point result, only the callback labeling.
    ScenarioSpec spec;
    spec.seed = 5;
    const auto model = FaultModel::fromScenario(spec);
    const std::vector<double> desc = {0.65, 0.625, 0.60, 0.575};
    const std::vector<double> asc(desc.rbegin(), desc.rend());

    std::map<double, std::vector<std::vector<FaultCell>>> byV[2];
    const std::vector<double> *orders[2] = {&desc, &asc};
    for (int o = 0; o < 2; ++o) {
        runVoltageSweep(*model, 256, 720, *orders[o],
                        [&](std::size_t idx, double v, FaultMap &map) {
                            EXPECT_EQ(v, (*orders[o])[idx]);
                            byV[o][v] = snapshotActive(map);
                        });
    }
    ASSERT_EQ(byV[0].size(), desc.size());
    ASSERT_EQ(byV[1].size(), desc.size());
    for (const double v : desc) {
        const auto &a = byV[0][v];
        const auto &b = byV[1][v];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t l = 0; l < a.size(); ++l) {
            ASSERT_EQ(a[l].size(), b[l].size())
                << "v=" << v << " line " << l;
            for (std::size_t i = 0; i < a[l].size(); ++i) {
                EXPECT_EQ(a[l][i].bit, b[l][i].bit);
                EXPECT_EQ(a[l][i].threshold, b[l][i].threshold);
            }
        }
    }
}

TEST(SweepEngineTest, DroopScheduleRefusesIncrementalPath)
{
    ScenarioSpec spec;
    spec.model = "droop";
    spec.droop.schedule = {0.625, 0.600, 0.575, 0.625}; // raises V
    const auto model = FaultModel::fromScenario(spec);
    std::vector<double> visitedV;
    const VoltageSweepStats st = runVoltageSweep(
        *model, 64, 720, spec.droop.schedule,
        [&](std::size_t idx, double v, FaultMap &map) {
            EXPECT_EQ(idx, visitedV.size());
            visitedV.push_back(v);
            EXPECT_FALSE(map.incrementalVoltage());
        });
    EXPECT_FALSE(st.incremental);
    EXPECT_EQ(st.coldActivations, 4u);
    EXPECT_EQ(visitedV, spec.droop.schedule); // caller order kept
    // And a droop-built (non-monotone) map refuses the opt-in
    // directly: its schedule may legally raise V.
    const auto map = model->buildMap(64, 720);
    EXPECT_FALSE(map->enableIncrementalVoltage());
    EXPECT_FALSE(map->incrementalVoltage());
}

TEST(SweepEngineTest, BuildMapFromPopulationIsBitIdentical)
{
    // The kserved warm store rebuilds maps from a shared sampled
    // population; the result must match a cold buildMap() exactly.
    for (const char *name : {"iid", "clustered", "burst", "droop"}) {
        ScenarioSpec spec;
        spec.model = name;
        spec.seed = 29;
        const auto model = FaultModel::fromScenario(spec);
        const auto cold = model->buildMap(256, 720);
        const auto warm =
            model->buildMapFrom(cold->population(), 720);
        EXPECT_EQ(warm->voltage(), cold->voltage()) << name;
        expectActiveIdentical(*warm, *cold, name);
    }
}
