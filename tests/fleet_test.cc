/**
 * @file
 * Tests for the fleet fabric (src/fleet): a Coordinator driving real
 * in-process kserved workers over loopback TCP. Placement is
 * deterministic for an idle fleet (rotating round-robin; stealing
 * only fires on overloaded queues), so the tests can pin which
 * worker computes which shard and force each fabric mechanism in
 * isolation: bit-identical shard merging against a direct in-process
 * sweep, peer fetch of a shard recurring on a different worker,
 * hedged re-dispatch away from an injected straggler, worker-side
 * cache hits on repeat campaigns, and the dispatch-accounting
 * invariant (dispatched == completed + cancelled) after each.
 */

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sweep.hh"
#include "common/json.hh"
#include "fleet/coordinator.hh"
#include "metrics/metrics.hh"
#include "runner/thread_pool.hh"
#include "serve/server.hh"
#include "serve/submit.hh"

using namespace killi;
using namespace killi::fleet;

namespace
{

/**
 * N in-process kserved workers on ephemeral loopback TCP ports plus
 * a Coordinator attached to them. @p delays injects a per-worker
 * debugJobDelaySeconds straggler (workers beyond the vector run
 * undelayed).
 */
struct TestFleet
{
    metrics::MetricsRegistry registry;
    std::vector<std::unique_ptr<serve::Server>> workers;
    std::unique_ptr<Coordinator> coord;

    explicit TestFleet(std::size_t n, FleetOptions fopt = {},
                       const std::vector<double> &delays = {})
    {
        for (std::size_t i = 0; i < n; ++i) {
            serve::ServerOptions sopt;
            sopt.port = 0; // ephemeral loopback TCP
            sopt.threads = 2;
            sopt.maxQueue = 16;
            if (i < delays.size())
                sopt.debugJobDelaySeconds = delays[i];
            workers.push_back(
                std::make_unique<serve::Server>(sopt));
            std::string err;
            if (!workers.back()->start(&err))
                ADD_FAILURE() << "worker " << i << ": " << err;
            WorkerEndpoint ep;
            ep.port = workers.back()->boundPort();
            fopt.workers.push_back(ep);
        }
        fopt.registry = &registry;
        coord = std::make_unique<Coordinator>(std::move(fopt));
        std::string err;
        if (!coord->start(&err))
            ADD_FAILURE() << "fleet start: " << err;
    }

    ~TestFleet()
    {
        coord.reset();
        for (auto &worker : workers)
            worker->stop();
    }
};

/** A validated campaign over @p workloads (comma list), fast scale,
 *  pinned seed — the same resolution path the daemon uses. */
serve::SubmitRequest
campaignFor(const std::string &workloads, double scale = 0.003,
            const std::string &schemes = "DECTED")
{
    Json options = Json::object();
    options.set("scale", Json::number(scale));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(std::uint64_t{42}));
    options.set("workloads", Json::string(workloads));
    options.set("schemes", Json::string(schemes));
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    req.set("options", std::move(options));
    req.set("stream", Json::boolean(false));
    serve::SubmitRequest out;
    std::string err;
    if (!serve::parseSubmit(req, out, err))
        ADD_FAILURE() << "parseSubmit: " << err;
    return out;
}

/** The attribution entry for @p workload. */
Json
shardFor(const Json &attribution, const std::string &workload)
{
    const Json &shards = attribution.at("shards");
    for (std::size_t i = 0; i < shards.size(); ++i)
        if (shards.at(i).at("workload").asString() == workload)
            return shards.at(i);
    ADD_FAILURE() << "no attribution entry for " << workload;
    return Json();
}

/** Assert the lifetime dispatch ledger balances and matches. */
void
expectLedger(Coordinator &coord, std::int64_t dispatched,
             std::int64_t completed, std::int64_t cancelled)
{
    const Json stats = coord.statsJson();
    EXPECT_EQ(stats.at("shards_dispatched").asInt(), dispatched);
    EXPECT_EQ(stats.at("shards_completed").asInt(), completed);
    EXPECT_EQ(stats.at("shards_cancelled").asInt(), cancelled);
    EXPECT_EQ(dispatched, completed + cancelled);
}

} // namespace

// ---------------------------------------------------------------
// Fleet fabric
// ---------------------------------------------------------------

TEST(Fleet, TwoWorkerCampaignIsBitIdenticalToDirectSweep)
{
    TestFleet fleet(2);
    const serve::SubmitRequest req =
        campaignFor("xsbench,spmv", 0.02, "DECTED,Killi 1:256");
    CancelToken cancel;
    std::atomic<unsigned> pointsDone{0};
    Json attribution;
    const Json doc = fleet.coord->runCampaign(
        1, req, cancel,
        [&](const SweepProgress &p) {
            if (p.pointDone)
                pointsDone.fetch_add(1);
        },
        &attribution);

    // The merged document against a direct in-process run of the
    // full campaign: the per-workload result arrays and the sweep
    // header must be byte-identical (the PR's acceptance bar).
    const SweepResult res = runEvaluationSweep(req.sopt);
    const Json direct = sweepToJson(req.sopt, res);
    EXPECT_EQ(doc.at("workloads").toString(0),
              direct.at("workloads").toString(0));
    EXPECT_EQ(doc.at("sweep").toString(0),
              direct.at("sweep").toString(0));
    EXPECT_EQ(doc.at("bench").asString(), "kserved");
    EXPECT_EQ(doc.at("options").toString(0),
              serve::resolvedOptionsJson(req.sopt).toString(0));

    // One synthesized point-done event per shard.
    EXPECT_EQ(pointsDone.load(), 2u);

    // Round-robin placement on an idle fleet: one shard per worker,
    // both computed, nothing hedged.
    EXPECT_EQ(attribution.at("workers").asInt(), 2);
    EXPECT_EQ(shardFor(attribution, "xsbench").at("worker")
                  .asString(), "w0");
    EXPECT_EQ(shardFor(attribution, "spmv").at("worker").asString(),
              "w1");
    for (const char *wl : {"xsbench", "spmv"}) {
        const Json shard = shardFor(attribution, wl);
        EXPECT_EQ(shard.at("origin").asString(), "computed");
        EXPECT_FALSE(shard.at("hedged").asBool());
    }
    expectLedger(*fleet.coord, 2, 2, 0);

    // The kfleet_* families are live in the registry.
    const std::string prom = fleet.registry.prometheusText();
    EXPECT_NE(prom.find("kfleet_workers"), std::string::npos);
    EXPECT_NE(prom.find("kfleet_shard_seconds"), std::string::npos);
}

TEST(Fleet, RecurringShardIsServedByPeerFetch)
{
    TestFleet fleet(2);
    CancelToken cancel;

    // Campaign 1 deals xsbench -> w0, spmv -> w1 (rotation offset
    // 0; stealing cannot fire on single-entry queues).
    Json attr1;
    const Json doc1 = fleet.coord->runCampaign(
        1, campaignFor("xsbench,spmv"), cancel,
        serve::FleetProgressFn(), &attr1);
    EXPECT_EQ(shardFor(attr1, "spmv").at("worker").asString(), "w1");
    EXPECT_EQ(shardFor(attr1, "spmv").at("origin").asString(),
              "computed");

    // Campaign 2 rotates the origin: stream -> w1, spmv -> w0. But
    // w1 already computed this exact spmv shard, so w0's dispatcher
    // pulls the bytes from w1's cache instead of recomputing.
    Json attr2;
    const Json doc2 = fleet.coord->runCampaign(
        2, campaignFor("stream,spmv"), cancel,
        serve::FleetProgressFn(), &attr2);
    const Json shard = shardFor(attr2, "spmv");
    EXPECT_EQ(shard.at("origin").asString(), "peer-fetch");
    EXPECT_EQ(shard.at("worker").asString(), "w1");

    // Peer-fetched bytes are the original bytes (spmv is the second
    // "workloads" entry of both campaigns).
    EXPECT_EQ(doc1.at("workloads").at(1).toString(0),
              doc2.at("workloads").at(1).toString(0));

    const Json stats = fleet.coord->statsJson();
    EXPECT_EQ(stats.at("peer_fetches").asInt(), 1);
    EXPECT_EQ(stats.at("peer_fetch_misses").asInt(), 0);
    // 3 computed dispatches; the peer fetch never dispatched.
    expectLedger(*fleet.coord, 3, 3, 0);
}

TEST(Fleet, HedgedRetryWinsOnFastWorkerAndLoserIsCancelled)
{
    FleetOptions fopt;
    fopt.slotsPerWorker = 1;
    fopt.hedgeSeconds = 0.2;
    // w0 stalls every admitted job for 3 s — far beyond the hedge
    // deadline — while w1 runs undelayed.
    TestFleet fleet(2, std::move(fopt), {3.0, 0.0});
    const serve::SubmitRequest req = campaignFor("xsbench");
    CancelToken cancel;
    Json attribution;
    const Json doc = fleet.coord->runCampaign(
        1, req, cancel, serve::FleetProgressFn(), &attribution);

    // The single shard lands on w0, goes late, is hedged to w1, and
    // w1's result wins; the straggling primary is abandoned.
    const Json shard = shardFor(attribution, "xsbench");
    EXPECT_EQ(shard.at("worker").asString(), "w1");
    EXPECT_EQ(shard.at("origin").asString(), "computed");
    EXPECT_TRUE(shard.at("hedged").asBool());
    EXPECT_EQ(attribution.at("hedges").asInt(), 1);

    const Json stats = fleet.coord->statsJson();
    EXPECT_EQ(stats.at("hedges").asInt(), 1);
    EXPECT_EQ(stats.at("hedge_wins").asInt(), 1);
    expectLedger(*fleet.coord, 2, 1, 1);

    // A hedged result is still the correct result.
    const SweepResult res = runEvaluationSweep(req.sopt);
    EXPECT_EQ(doc.at("workloads").toString(0),
              sweepToJson(req.sopt, res).at("workloads").toString(0));
}

TEST(Fleet, RepeatCampaignHitsTheWorkerCache)
{
    TestFleet fleet(1);
    const serve::SubmitRequest req = campaignFor("xsbench");
    CancelToken cancel;
    Json attr1;
    const Json doc1 = fleet.coord->runCampaign(
        1, req, cancel, serve::FleetProgressFn(), &attr1);
    EXPECT_EQ(shardFor(attr1, "xsbench").at("origin").asString(),
              "computed");

    // Same campaign again: the sole worker already holds the shard,
    // so the dispatch is a worker-side cache hit (peer fetch never
    // fires against the worker that is about to serve the shard
    // anyway — that would just hide the worker's own hit).
    Json attr2;
    const Json doc2 = fleet.coord->runCampaign(
        2, req, cancel, serve::FleetProgressFn(), &attr2);
    EXPECT_EQ(shardFor(attr2, "xsbench").at("origin").asString(),
              "cache-hit");
    EXPECT_EQ(doc1.at("workloads").toString(0),
              doc2.at("workloads").toString(0));

    const Json stats = fleet.coord->statsJson();
    EXPECT_EQ(stats.at("peer_fetches").asInt(), 0);
    expectLedger(*fleet.coord, 2, 2, 0);
}

TEST(Fleet, StartFailsWhenAWorkerIsUnreachable)
{
    FleetOptions fopt;
    WorkerEndpoint ep;
    ep.socketPath = "/tmp/kfleet-test-unreachable.sock";
    fopt.workers.push_back(ep);
    fopt.connectTimeoutSeconds = 0.3;
    Coordinator coord(std::move(fopt));
    std::string err;
    EXPECT_FALSE(coord.start(&err));
    EXPECT_NE(err.find("w0"), std::string::npos) << err;
}

TEST(Fleet, StartFailsWithNoWorkers)
{
    Coordinator coord(FleetOptions{});
    std::string err;
    EXPECT_FALSE(coord.start(&err));
    EXPECT_NE(err.find("no workers"), std::string::npos) << err;
}
