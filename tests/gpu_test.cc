/**
 * @file
 * Tests for the GPU substrate: workload determinism and shape
 * (footprints, write mixes, compute ratios, MPKI banding at reduced
 * scale), compute-unit progress, and the wired GpuSystem.
 */

#include <gtest/gtest.h>

#include "cache/protection.hh"
#include "gpu/gpu_system.hh"
#include "gpu/workload.hh"

using namespace killi;

TEST(WorkloadTest, TenWorkloadsExist)
{
    const auto names = workloadNames();
    EXPECT_EQ(names.size(), 10u);
    for (const auto &name : names) {
        const auto wl = makeWorkload(name, 0.01);
        EXPECT_EQ(wl->name(), name);
        EXPECT_GT(wl->opsPerWavefront(), 0u);
        EXPECT_GT(wl->wavefrontsPerCu(), 0u);
    }
}

TEST(WorkloadTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeWorkload("nonesuch"), "");
}

TEST(WorkloadTest, OpsAreDeterministic)
{
    for (const auto &name : workloadNames()) {
        const auto a = makeWorkload(name, 0.1);
        const auto b = makeWorkload(name, 0.1);
        for (std::uint64_t idx = 0; idx < 200; ++idx) {
            const MemOp opA = a->op(3, 2, idx);
            const MemOp opB = b->op(3, 2, idx);
            EXPECT_EQ(opA.addr, opB.addr);
            EXPECT_EQ(opA.isWrite, opB.isWrite);
            EXPECT_EQ(opA.computeCycles, opB.computeCycles);
        }
    }
}

TEST(WorkloadTest, AddressesAreLineAligned)
{
    for (const auto &name : workloadNames()) {
        const auto wl = makeWorkload(name, 0.05);
        for (std::uint64_t idx = 0; idx < 500; ++idx)
            EXPECT_EQ(wl->op(0, 0, idx).addr % 64, 0u) << name;
    }
}

TEST(WorkloadTest, MemoryBoundSplitMatchesFig5)
{
    // Fig. 5 groups: xsbench/fft/stream/spmv memory-bound.
    unsigned memBound = 0;
    for (const auto &name : workloadNames()) {
        const auto wl = makeWorkload(name, 0.01);
        if (wl->memoryBound())
            ++memBound;
    }
    EXPECT_EQ(memBound, 4u);
    EXPECT_TRUE(makeWorkload("xsbench", 0.01)->memoryBound());
    EXPECT_TRUE(makeWorkload("fft", 0.01)->memoryBound());
    EXPECT_FALSE(makeWorkload("dgemm", 0.01)->memoryBound());
}

TEST(WorkloadTest, ComputeBoundWorkloadsHaveLongComputeSections)
{
    double memAvg = 0, compAvg = 0;
    unsigned memN = 0, compN = 0;
    for (const auto &name : workloadNames()) {
        const auto wl = makeWorkload(name, 0.05);
        double sum = 0;
        for (std::uint64_t i = 0; i < 300; ++i)
            sum += wl->op(1, 1, i).computeCycles;
        if (wl->memoryBound()) {
            memAvg += sum / 300;
            ++memN;
        } else {
            compAvg += sum / 300;
            ++compN;
        }
    }
    EXPECT_LT(memAvg / memN, compAvg / compN);
}

TEST(WorkloadTest, ScaleChangesOpCount)
{
    const auto small = makeWorkload("xsbench", 0.1);
    const auto large = makeWorkload("xsbench", 1.0);
    EXPECT_LT(small->opsPerWavefront(), large->opsPerWavefront());
}

TEST(WorkloadTest, WritesPresentWhereExpected)
{
    // stream (triad stores) and fft (butterfly results) must write.
    for (const char *name : {"stream", "fft"}) {
        const auto wl = makeWorkload(name, 0.05);
        unsigned writes = 0;
        for (std::uint64_t i = 0; i < 1000; ++i)
            writes += wl->op(0, 0, i).isWrite;
        EXPECT_GT(writes, 100u) << name;
    }
}

TEST(GpuSystemTest, RunsToCompletion)
{
    GpuParams gp;
    FaultFreeProtection prot;
    const auto wl = makeWorkload("dgemm", 0.02);
    GpuSystem sys(gp, prot, *wl);
    const RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.sdc, 0u);
    const std::uint64_t totalOps = std::uint64_t{gp.numCus} *
        wl->wavefrontsPerCu() * wl->opsPerWavefront();
    EXPECT_GE(r.instructions, totalOps);
}

TEST(GpuSystemTest, DeterministicAcrossRuns)
{
    GpuParams gp;
    const auto wl = makeWorkload("spmv", 0.02);
    FaultFreeProtection p1, p2;
    const RunResult a = GpuSystem(gp, p1, *wl).run();
    const RunResult b = GpuSystem(gp, p2, *wl).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2ReadMisses, b.l2ReadMisses);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(GpuSystemTest, MemoryBoundWorkloadsMissMore)
{
    GpuParams gp;
    const auto hot = makeWorkload("dgemm", 0.05);
    const auto cold = makeWorkload("stream", 0.05);
    FaultFreeProtection p1, p2;
    const RunResult rHot = GpuSystem(gp, p1, *hot).run();
    const RunResult rCold = GpuSystem(gp, p2, *cold).run();
    EXPECT_LT(rHot.mpki(), rCold.mpki());
    EXPECT_GT(rCold.mpki(), 100.0);
    EXPECT_LT(rHot.mpki(), 50.0);
}

TEST(GpuSystemTest, WriteTrafficReachesDram)
{
    GpuParams gp;
    FaultFreeProtection prot;
    const auto wl = makeWorkload("stream", 0.02);
    const RunResult r = GpuSystem(gp, prot, *wl).run();
    EXPECT_GT(r.dramWrites, 0u);
}

TEST(GpuSystemTest, DumpStatsListsComponents)
{
    GpuParams gp;
    FaultFreeProtection prot;
    const auto wl = makeWorkload("dgemm", 0.01);
    GpuSystem sys(gp, prot, *wl);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("l2.read_hits"), std::string::npos);
    EXPECT_NE(out.find("dram.reads"), std::string::npos);
    EXPECT_NE(out.find("l1.0.hits"), std::string::npos);
}

TEST(GpuSystemTest, WarmupExcludesTrainingFromStats)
{
    GpuParams gp;
    FaultFreeProtection p1, p2;
    const auto wl = makeWorkload("dgemm", 0.02);
    const RunResult cold = GpuSystem(gp, p1, *wl).run();
    const RunResult warm = GpuSystem(gp, p2, *wl).run(1);
    // The warmed pass re-runs the same kernel with hot caches: far
    // fewer misses and cycles than the cold pass.
    EXPECT_LT(warm.l2ReadMisses, cold.l2ReadMisses / 2);
    EXPECT_LT(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.instructions, cold.instructions);
}

TEST(GpuSystemTest, MpkiFormula)
{
    RunResult r;
    r.instructions = 1'000'000;
    r.l2ReadMisses = 5000;
    r.l2ErrorMisses = 1000;
    EXPECT_DOUBLE_EQ(r.mpki(), 6.0);
    EXPECT_EQ(r.l2Accesses(), 6000u);
}
