/**
 * @file
 * Cross-module integration tests: full GPU runs with Killi and the
 * baselines on real fault populations at low voltage. The central
 * invariants: the write-through system never delivers silent data
 * corruption beyond the documented §5.6.2 window, DFH training
 * converges onto the true fault populations, and the performance
 * ordering of the paper holds (baseline <= FLAIR <= Killi, with
 * bigger ECC caches no slower than tiny ones).
 */

#include <gtest/gtest.h>

#include "baselines/precharacterized.hh"
#include "fault/fault_map.hh"
#include "fault/voltage_model.hh"
#include "gpu/gpu_system.hh"
#include "killi/killi.hh"

using namespace killi;

namespace
{

struct Rig
{
    explicit Rig(double voltage, std::uint64_t seed = 21)
        : faults(gp.l2Geom.numLines(), 720, model, seed)
    {
        faults.setVoltage(voltage);
    }

    RunResult
    runKilli(const char *wlName, KilliParams kp = KilliParams{},
             KilliProtection **protOut = nullptr)
    {
        const auto wl = makeWorkload(wlName, 0.15);
        killiProt = std::make_unique<KilliProtection>(faults, kp);
        if (protOut)
            *protOut = killiProt.get();
        GpuSystem sys(gp, *killiProt, *wl);
        return sys.run();
    }

    RunResult
    runBaseline(const char *wlName)
    {
        const auto wl = makeWorkload(wlName, 0.15);
        FaultFreeProtection prot;
        GpuSystem sys(gp, prot, *wl);
        return sys.run();
    }

    RunResult
    runFlair(const char *wlName)
    {
        const auto wl = makeWorkload(wlName, 0.15);
        auto prot = makeFlair(faults);
        GpuSystem sys(gp, *prot, *wl);
        return sys.run();
    }

    GpuParams gp;
    VoltageModel model;
    FaultMap faults;
    std::unique_ptr<KilliProtection> killiProt;
};

} // namespace

TEST(IntegrationTest, NoSdcAtOperatingVoltageForFlair)
{
    // Pre-characterized SECDED with <=1 fault per enabled line can
    // never miscorrect: zero SDC, always.
    Rig s(0.625);
    for (const char *wl : {"xsbench", "dgemm"}) {
        const RunResult r = s.runFlair(wl);
        EXPECT_EQ(r.sdc, 0u) << wl;
    }
}

TEST(IntegrationTest, KilliSdcStaysInsidePaperWindow)
{
    // §5.6.2: only same-segment masked multi-bit faults can slip
    // through (0.003%-of-lines scale). Distinct corrupted lines must
    // stay within a small multiple of that window.
    Rig s(0.625);
    const RunResult r = s.runKilli("xsbench");
    // Generous bound: windowed lines ~ 0.015% of 32768 lines ~ 5;
    // each can be read multiple times while corrupt.
    EXPECT_LT(r.sdc, 200u);
}

TEST(IntegrationTest, InvertedWriteEliminatesSdc)
{
    Rig s(0.625);
    KilliParams kp;
    kp.invertedWriteCheck = true;
    const RunResult r = s.runKilli("xsbench", kp);
    EXPECT_EQ(r.sdc, 0u);
}

TEST(IntegrationTest, DfhTrainingConvergesTowardTruth)
{
    Rig s(0.625);
    KilliProtection *prot = nullptr;
    s.runKilli("xsbench", KilliParams{}, &prot);
    ASSERT_NE(prot, nullptr);
    const auto hist = prot->dfhHistogram();
    const auto truth = s.faults.histogram(516);

    // Most of the touched cache must have left the initial state,
    // and the trained populations must be ordered like the truth:
    // mostly fault-free, some single-fault, few disabled.
    EXPECT_GT(hist[0], hist[2]);
    EXPECT_GT(hist[2], hist[3]);
    EXPECT_LE(hist[3], truth.twoPlus * 2);
    EXPECT_GT(hist[0] + hist[2] + hist[3],
              s.gp.l2Geom.numLines() / 2);
}

TEST(IntegrationTest, PerformanceOrderingHolds)
{
    Rig s(0.625);
    const RunResult base = s.runBaseline("xsbench");
    const RunResult flair = s.runFlair("xsbench");
    const RunResult killi16 = s.runKilli("xsbench", [] {
        KilliParams kp;
        kp.ratio = 16;
        return kp;
    }());
    EXPECT_EQ(base.sdc, 0u);
    // FLAIR at 0.625xVDD is near-baseline (paper Fig. 4).
    EXPECT_LT(double(flair.cycles) / double(base.cycles), 1.05);
    // Killi costs more than FLAIR (online training) but stays in the
    // same regime at this reduced run length.
    EXPECT_LT(double(killi16.cycles) / double(base.cycles), 1.25);
}

TEST(IntegrationTest, BiggerEccCacheNeverMuchWorse)
{
    Rig s(0.625);
    const RunResult small = s.runKilli("xsbench", [] {
        KilliParams kp;
        kp.ratio = 256;
        return kp;
    }());
    const RunResult large = s.runKilli("xsbench", [] {
        KilliParams kp;
        kp.ratio = 16;
        return kp;
    }());
    // Paper Fig. 4/5: performance is regulated by the ECC cache
    // size; the 1:16 configuration tracks or beats 1:256.
    EXPECT_LE(double(large.cycles), double(small.cycles) * 1.02);
    EXPECT_LE(large.mpki(), small.mpki() * 1.02);
}

TEST(IntegrationTest, VoltageChangeRequiresRelearn)
{
    Rig s(0.65);
    KilliParams kp;
    KilliProtection *prot = nullptr;
    s.runKilli("dgemm", kp, &prot);
    ASSERT_NE(prot, nullptr);

    // Drop the voltage: the fault population grows; Killi resets its
    // DFH knowledge and the histogram returns to all-Initial.
    s.faults.setVoltage(0.575);
    prot->reset();
    const auto hist = prot->dfhHistogram();
    EXPECT_EQ(hist[1], s.gp.l2Geom.numLines());
    EXPECT_EQ(prot->eccCache().validEntries(), 0u);
}

TEST(IntegrationTest, LowerVoltageDisablesMoreLines)
{
    Rig s(0.575, 33);
    KilliProtection *prot = nullptr;
    s.runKilli("xsbench", KilliParams{}, &prot);
    const auto hist575 = prot->dfhHistogram();

    Rig s2(0.625, 33);
    KilliProtection *prot2 = nullptr;
    s2.runKilli("xsbench", KilliParams{}, &prot2);
    const auto hist625 = prot2->dfhHistogram();

    EXPECT_GT(hist575[3], hist625[3] * 5);
}

TEST(IntegrationTest, DectedStableEnablesMoreCapacityAtLowVoltage)
{
    // §5.2: storing DECTED in the ECC cache keeps 2-fault lines
    // usable, which matters at voltages below 0.625.
    Rig s(0.59, 7);
    KilliProtection *plain = nullptr;
    s.runKilli("xsbench", KilliParams{}, &plain);
    const std::size_t disabledPlain = plain->dfhHistogram()[3];

    Rig s2(0.59, 7);
    KilliParams kp;
    kp.dectedStable = true;
    KilliProtection *strong = nullptr;
    s2.runKilli("xsbench", kp, &strong);
    const std::size_t disabledStrong = strong->dfhHistogram()[3];

    EXPECT_LT(disabledStrong, disabledPlain / 2);
}

TEST(IntegrationTest, FaultFreeVoltageKilliMatchesBaselineWarm)
{
    // At nominal voltage there are no faults. After a warmup pass
    // amortizes the one-shot DFH training, Killi's steady-state cost
    // is just the 1-cycle check latency.
    Rig s(1.0);
    const auto wl = makeWorkload("dgemm", 0.15);
    FaultFreeProtection baseProt;
    GpuSystem baseSys(s.gp, baseProt, *wl);
    const RunResult base = baseSys.run(/*warmupPasses=*/4);

    KilliProtection killiProt(s.faults, KilliParams{});
    GpuSystem killiSys(s.gp, killiProt, *wl);
    const RunResult killi = killiSys.run(/*warmupPasses=*/4);

    EXPECT_EQ(killi.sdc, 0u);
    EXPECT_EQ(killi.l2ErrorMisses, 0u);
    EXPECT_LT(double(killi.cycles) / double(base.cycles), 1.10);
}
