/**
 * @file
 * Fuzz-style negative tests for the strict JSON parser: truncated
 * documents, deep nesting, malformed escapes, duplicate keys, and
 * seeded random byte mutations of a valid document. The parser must
 * reject malformed input with an error (never crash, hang, or return
 * a half-built document) — these run under ASan/UBSan in CI.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"
#include "common/rng.hh"

namespace killi
{
namespace
{

/** A representative document exercising every value kind. */
std::string
sampleText()
{
    Json doc = Json::object();
    doc.set("name", Json::string("kcheck \"quoted\" \n\t"));
    doc.set("count", Json::number(std::int64_t(-42)));
    doc.set("ratio", Json::number(0.625));
    doc.set("ok", Json::boolean(true));
    doc.set("missing", Json::null());
    Json arr = Json::array();
    arr.push(Json::number(std::int64_t(1)));
    Json inner = Json::object();
    inner.set("deep", Json::string("value"));
    arr.push(std::move(inner));
    doc.set("items", std::move(arr));
    return doc.toString();
}

bool
parses(const std::string &text, std::string *err = nullptr)
{
    Json out;
    return Json::parse(text, out, err);
}

TEST(JsonFuzz, EveryProperPrefixIsRejected)
{
    const std::string text = sampleText();
    ASSERT_TRUE(parses(text));
    for (std::size_t len = 0; len < text.size(); ++len) {
        std::string err;
        EXPECT_FALSE(parses(text.substr(0, len), &err))
            << "prefix of length " << len << " parsed";
        EXPECT_FALSE(err.empty());
    }
}

TEST(JsonFuzz, NestingDepthIsBounded)
{
    const auto nested = [](int depth) {
        return std::string(std::size_t(depth), '[') +
            std::string(std::size_t(depth), ']');
    };
    EXPECT_TRUE(parses(nested(96)));
    std::string err;
    EXPECT_FALSE(parses(nested(97), &err));
    EXPECT_NE(err.find("depth"), std::string::npos) << err;
    // A pathological 100k-deep document must fail fast, not smash
    // the stack.
    EXPECT_FALSE(parses(std::string(100000, '[')));
    EXPECT_FALSE(parses(std::string(100000, '{')));
}

TEST(JsonFuzz, MalformedEscapesAreRejected)
{
    EXPECT_FALSE(parses("\"\\q\""));
    EXPECT_FALSE(parses("\"\\u12\""));
    EXPECT_FALSE(parses("\"\\u12g4\""));
    EXPECT_FALSE(parses("\"\\u00ff\"")); // non-ASCII unsupported
    EXPECT_FALSE(parses("\"\\"));
    EXPECT_TRUE(parses("\"\\u0041\""));
}

TEST(JsonFuzz, DuplicateObjectKeysAreRejected)
{
    std::string err;
    EXPECT_FALSE(parses("{\"a\": 1, \"a\": 2}", &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    // Same key in sibling objects is fine.
    EXPECT_TRUE(parses("{\"a\": {\"x\": 1}, \"b\": {\"x\": 2}}"));
}

TEST(JsonFuzz, AssortedMalformedInputs)
{
    EXPECT_FALSE(parses(""));
    EXPECT_FALSE(parses("  \n\t "));
    EXPECT_FALSE(parses("1 2"));
    EXPECT_FALSE(parses("tru"));
    EXPECT_FALSE(parses("nulll"));
    EXPECT_FALSE(parses("-"));
    EXPECT_FALSE(parses("01x"));
    EXPECT_FALSE(parses("[1,]"));
    EXPECT_FALSE(parses("{\"a\" 1}"));
    EXPECT_FALSE(parses("{\"a\": 1,}"));
    EXPECT_FALSE(parses("{a: 1}"));
    EXPECT_FALSE(parses("[1 2]"));
}

TEST(JsonFuzz, SeededByteMutationsNeverCrash)
{
    const std::string text = sampleText();
    Rng rng(0x6a736f6e66757aULL); // fixed seed ("jsonfuz")
    unsigned accepted = 0;
    for (int round = 0; round < 2000; ++round) {
        std::string mutated = text;
        const unsigned edits = 1 + unsigned(rng.below(4));
        for (unsigned e = 0; e < edits; ++e) {
            const std::size_t at = rng.below(mutated.size());
            switch (rng.below(3)) {
              case 0: // flip to a random byte
                mutated[at] = char(rng.below(256));
                break;
              case 1: // delete
                mutated.erase(at, 1);
                break;
              default: // duplicate
                mutated.insert(at, 1, mutated[at]);
                break;
            }
            if (mutated.empty())
                break;
        }
        Json out;
        std::string err;
        if (Json::parse(mutated, out, &err))
            ++accepted; // rare: mutation kept the document valid
        else
            EXPECT_FALSE(err.empty());
    }
    // Sanity: the harness mutates for real — most rounds reject.
    EXPECT_LT(accepted, 1000u);
}

TEST(JsonFuzz, TruncatedScenarioFileFailsCleanly)
{
    // The kcheck seed-file reader path: a truncated scenario is a
    // parse error, not a crash or a partially-applied scenario.
    const std::string doc =
        "{\"format\": \"kcheck-scenario-v1\", \"seed\": \"12";
    std::string err;
    EXPECT_FALSE(parses(doc, &err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace killi
