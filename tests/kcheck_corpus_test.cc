/**
 * @file
 * Regression corpus replay: every scenario committed under
 * tests/corpus/ is a minimized kcheck seed file (one per KilliParams
 * extension) and must run violation-free. When kcheck finds and
 * shrinks a real counterexample, the fixed scenario gets added here
 * so the bug stays dead.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "check/scenario.hh"
#include "common/json.hh"

namespace killi::check
{
namespace
{

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(KCHECK_CORPUS_DIR)) {
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(KcheckCorpus, HasOneSeedPerExtension)
{
    const auto files = corpusFiles();
    ASSERT_GE(files.size(), 6u);
    bool dected = false, invertedWrite = false, writeback = false,
         smallRatio = false, interleaveOff = false;
    bool clustered = false, burst = false, droop = false;
    for (const auto &path : files) {
        const Scenario s =
            Scenario::fromJson(readJsonFile(path.string()));
        dected |= s.params.dectedStable;
        invertedWrite |= s.params.invertedWriteCheck;
        writeback |= s.params.writebackMode;
        smallRatio |= s.params.ratio < 256;
        interleaveOff |= !s.params.interleavedParity;
        if (s.faultModel) {
            clustered |= s.faultModel->model == "clustered";
            burst |= s.faultModel->model == "burst";
            droop |= s.faultModel->model == "droop";
        }
    }
    EXPECT_TRUE(dected) << "no corpus seed covers dected_stable";
    EXPECT_TRUE(invertedWrite)
        << "no corpus seed covers inverted_write_check";
    EXPECT_TRUE(writeback) << "no corpus seed covers writeback_mode";
    EXPECT_TRUE(smallRatio) << "no corpus seed covers ratio < 256";
    EXPECT_TRUE(interleaveOff)
        << "no corpus seed covers interleaved_parity=false";
    EXPECT_TRUE(clustered)
        << "no corpus seed carries a clustered background model";
    EXPECT_TRUE(burst)
        << "no corpus seed carries a burst background model";
    EXPECT_TRUE(droop)
        << "no corpus seed carries a droop background model";
}

TEST(KcheckCorpus, AllSeedsReplayWithoutViolations)
{
    const auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const auto &path : files) {
        const Scenario s =
            Scenario::fromJson(readJsonFile(path.string()));
        const CheckResult res = runScenario(s);
        EXPECT_TRUE(res.ok())
            << path.filename().string() << " (" << s.summary()
            << "): "
            << (res.violations.empty()
                    ? std::string("?")
                    : res.violations.front().message);
    }
}

TEST(KcheckCorpus, ReplayIsDeterministic)
{
    const auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    const Scenario s =
        Scenario::fromJson(readJsonFile(files.front().string()));
    EXPECT_EQ(runScenario(s).toJson().toString(),
              runScenario(s).toJson().toString());
}

} // namespace
} // namespace killi::check
