/**
 * @file
 * Regression corpus replay: every scenario committed under
 * tests/corpus/ is a minimized kcheck seed file (one per KilliParams
 * extension) and must run violation-free. When kcheck finds and
 * shrinks a real counterexample, the fixed scenario gets added here
 * so the bug stays dead.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "check/scenario.hh"
#include "common/json.hh"
#include "replay/recording.hh"
#include "replay/session.hh"

namespace killi::check
{
namespace
{

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(KCHECK_CORPUS_DIR)) {
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(KcheckCorpus, HasOneSeedPerExtension)
{
    const auto files = corpusFiles();
    ASSERT_GE(files.size(), 6u);
    bool dected = false, invertedWrite = false, writeback = false,
         smallRatio = false, interleaveOff = false;
    bool clustered = false, burst = false, droop = false;
    for (const auto &path : files) {
        const Scenario s =
            Scenario::fromJson(readJsonFile(path.string()));
        dected |= s.params.dectedStable;
        invertedWrite |= s.params.invertedWriteCheck;
        writeback |= s.params.writebackMode;
        smallRatio |= s.params.ratio < 256;
        interleaveOff |= !s.params.interleavedParity;
        if (s.faultModel) {
            clustered |= s.faultModel->model == "clustered";
            burst |= s.faultModel->model == "burst";
            droop |= s.faultModel->model == "droop";
        }
    }
    EXPECT_TRUE(dected) << "no corpus seed covers dected_stable";
    EXPECT_TRUE(invertedWrite)
        << "no corpus seed covers inverted_write_check";
    EXPECT_TRUE(writeback) << "no corpus seed covers writeback_mode";
    EXPECT_TRUE(smallRatio) << "no corpus seed covers ratio < 256";
    EXPECT_TRUE(interleaveOff)
        << "no corpus seed covers interleaved_parity=false";
    EXPECT_TRUE(clustered)
        << "no corpus seed carries a clustered background model";
    EXPECT_TRUE(burst)
        << "no corpus seed carries a burst background model";
    EXPECT_TRUE(droop)
        << "no corpus seed carries a droop background model";
}

TEST(KcheckCorpus, AllSeedsReplayWithoutViolations)
{
    const auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const auto &path : files) {
        const Scenario s =
            Scenario::fromJson(readJsonFile(path.string()));
        const CheckResult res = runScenario(s);
        EXPECT_TRUE(res.ok())
            << path.filename().string() << " (" << s.summary()
            << "): "
            << (res.violations.empty()
                    ? std::string("?")
                    : res.violations.front().message);
    }
}

TEST(KcheckCorpus, ReplayIsDeterministic)
{
    const auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    const Scenario s =
        Scenario::fromJson(readJsonFile(files.front().string()));
    EXPECT_EQ(runScenario(s).toJson().toString(),
              runScenario(s).toJson().toString());
}

TEST(KcheckCorpus, CommittedRecordingsReplayBitIdentical)
{
    // tests/corpus/recordings/ holds killi-recording-v1 captures of
    // the background fault-model corpus classes (clustered, burst,
    // droop), made with `kcheck replay=<seed> record=<file>`. They
    // pin the RNG draw stream and the result digest across commits:
    // any change to fault sampling or the checker's verdicts — even
    // one that keeps the corpus violation-free — shows up here as a
    // precise (stream, index) divergence, not a silent drift.
    std::vector<std::filesystem::path> recs;
    const auto dir =
        std::filesystem::path(KCHECK_CORPUS_DIR) / "recordings";
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << dir << " missing";
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".json")
            recs.push_back(entry.path());
    }
    std::sort(recs.begin(), recs.end());
    ASSERT_GE(recs.size(), 3u)
        << "expected recordings for clustered/burst/droop";
    for (const auto &path : recs) {
        const replay::Recording rec =
            replay::Recording::loadFile(path.string());
        EXPECT_EQ(rec.tool, "kcheck") << path.filename().string();
        const replay::CheckSession s = replay::replayScenario(rec);
        EXPECT_TRUE(s.verified)
            << path.filename().string() << ": "
            << s.divergence.describe();
        EXPECT_TRUE(s.result.ok()) << path.filename().string();
    }
}

} // namespace
} // namespace killi::check
