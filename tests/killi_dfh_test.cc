/**
 * @file
 * Pins the DFH state machine to paper Table 1 / Table 2, row by row,
 * plus the documented conservative fills for combinations the table
 * leaves unspecified. Exhaustive over the full signal space so any
 * accidental change to the FSM fails loudly.
 */

#include <gtest/gtest.h>

#include "killi/dfh.hh"

using namespace killi;

TEST(DfhTest, EncodingsMatchTable1)
{
    EXPECT_EQ(static_cast<unsigned>(Dfh::Stable0), 0b00u);
    EXPECT_EQ(static_cast<unsigned>(Dfh::Initial), 0b01u);
    EXPECT_EQ(static_cast<unsigned>(Dfh::Stable1), 0b10u);
    EXPECT_EQ(static_cast<unsigned>(Dfh::Disabled), 0b11u);
    EXPECT_EQ(dfhName(Dfh::Initial), "b'01");
}

// --- Stable0 (b'00): only parity is available -----------------------

TEST(DfhStable0Test, CleanParityStays)
{
    const DfhDecision d = dfhOnStable0(SParity::Ok);
    EXPECT_EQ(d.next, Dfh::Stable0);
    EXPECT_EQ(d.action, DfhAction::SendClean);
    EXPECT_FALSE(d.freeEccEntry);
}

TEST(DfhStable0Test, SingleMismatchRelearns)
{
    // Table 2 row 2: "1-bit error discovered after training; initial
    // classification incorrect" -> b'01 + error-induced miss.
    const DfhDecision d = dfhOnStable0(SParity::Single);
    EXPECT_EQ(d.next, Dfh::Initial);
    EXPECT_EQ(d.action, DfhAction::ErrorMiss);
}

TEST(DfhStable0Test, MultiMismatchDisables)
{
    const DfhDecision d = dfhOnStable0(SParity::Multi);
    EXPECT_EQ(d.next, Dfh::Disabled);
    EXPECT_EQ(d.action, DfhAction::ErrorMiss);
}

// --- Initial (b'01): parity + SECDED ---------------------------------

TEST(DfhInitialTest, AllCleanTrainsToStable0)
{
    // "No Error. Most frequent scenario."
    const DfhDecision d = dfhOnInitial(SParity::Ok, false, false);
    EXPECT_EQ(d.next, Dfh::Stable0);
    EXPECT_EQ(d.action, DfhAction::SendClean);
    EXPECT_TRUE(d.freeEccEntry); // "Invalidate entry in ECC cache"
}

TEST(DfhInitialTest, SingleBitLvError)
{
    // (x, x, x): correct using checkbits, move to b'10.
    const DfhDecision d = dfhOnInitial(SParity::Single, true, true);
    EXPECT_EQ(d.next, Dfh::Stable1);
    EXPECT_EQ(d.action, DfhAction::CorrectAndSend);
    EXPECT_FALSE(d.freeEccEntry);
}

TEST(DfhInitialTest, DoubleErrorSignatureDisables)
{
    // Syndrome non-zero with matching global parity = even error
    // count; Table 2 disables for every parity observation.
    for (const SParity sp :
         {SParity::Ok, SParity::Single, SParity::Multi}) {
        const DfhDecision d = dfhOnInitial(sp, true, false);
        EXPECT_EQ(d.next, Dfh::Disabled);
        EXPECT_EQ(d.action, DfhAction::ErrorMiss);
    }
}

TEST(DfhInitialTest, MultiSegmentMismatchDisables)
{
    // (xx, *, *) rows all disable.
    for (const bool syn : {false, true}) {
        for (const bool gp : {false, true}) {
            const DfhDecision d = dfhOnInitial(SParity::Multi, syn, gp);
            EXPECT_EQ(d.next, Dfh::Disabled);
            EXPECT_EQ(d.action, DfhAction::ErrorMiss);
        }
    }
}

TEST(DfhInitialTest, MetadataFaultFillsTreatAsStable1)
{
    // Unspecified combinations attributed to metadata-cell faults
    // keep the payload and remember one LV fault (documented fills).
    const DfhDecision a = dfhOnInitial(SParity::Ok, false, true);
    EXPECT_EQ(a.next, Dfh::Stable1);
    const DfhDecision b = dfhOnInitial(SParity::Ok, true, true);
    EXPECT_EQ(b.next, Dfh::Stable1);
    const DfhDecision c = dfhOnInitial(SParity::Single, false, false);
    EXPECT_EQ(c.next, Dfh::Stable1);
    EXPECT_EQ(c.action, DfhAction::SendClean); // payload is intact
}

TEST(DfhInitialTest, ParityPlusOverallCheckbitDisables)
{
    const DfhDecision d = dfhOnInitial(SParity::Single, false, true);
    EXPECT_EQ(d.next, Dfh::Disabled);
}

// --- Stable1 (b'10) ---------------------------------------------------

TEST(DfhStable1Test, AllCleanDemotesToStable0)
{
    // "Non-LV transient error that was subsequently overwritten."
    const DfhDecision d = dfhOnStable1(SParity::Ok, false, false);
    EXPECT_EQ(d.next, Dfh::Stable0);
    EXPECT_EQ(d.action, DfhAction::SendClean);
    EXPECT_TRUE(d.freeEccEntry);
}

TEST(DfhStable1Test, SingleBitErrorCorrects)
{
    // "Don't Care / x / x -> 10": parity observation is irrelevant.
    for (const SParity sp :
         {SParity::Ok, SParity::Single, SParity::Multi}) {
        const DfhDecision d = dfhOnStable1(sp, true, true);
        EXPECT_EQ(d.next, Dfh::Stable1);
        EXPECT_EQ(d.action, DfhAction::CorrectAndSend);
    }
}

TEST(DfhStable1Test, ParitySeesWhatEccCannot)
{
    // (x or xx, ok, ok): likely non-LV + LV combination -> disable.
    for (const SParity sp : {SParity::Single, SParity::Multi}) {
        const DfhDecision d = dfhOnStable1(sp, false, false);
        EXPECT_EQ(d.next, Dfh::Disabled);
        EXPECT_EQ(d.action, DfhAction::ErrorMiss);
    }
}

TEST(DfhStable1Test, EvenErrorCountDisables)
{
    // (xx, x, ok) -> 11 and the single-segment fill.
    for (const SParity sp :
         {SParity::Ok, SParity::Single, SParity::Multi}) {
        const DfhDecision d = dfhOnStable1(sp, true, false);
        EXPECT_EQ(d.next, Dfh::Disabled);
    }
}

TEST(DfhStable1Test, OverallCheckbitFaultCorrects)
{
    const DfhDecision d = dfhOnStable1(SParity::Ok, false, true);
    EXPECT_EQ(d.next, Dfh::Stable1);
    EXPECT_EQ(d.action, DfhAction::CorrectAndSend);
}

TEST(DfhStable1Test, ErrorOnFaultyLineDisables)
{
    // (xx, ok, x) -> 11 ("error on line with existing 1-bit fault").
    const DfhDecision d = dfhOnStable1(SParity::Multi, false, true);
    EXPECT_EQ(d.next, Dfh::Disabled);
    const DfhDecision e = dfhOnStable1(SParity::Single, false, true);
    EXPECT_EQ(e.next, Dfh::Disabled);
}

// --- Global sanity ----------------------------------------------------

TEST(DfhTest, EveryCombinationYieldsAValidDecision)
{
    for (const SParity sp :
         {SParity::Ok, SParity::Single, SParity::Multi}) {
        for (const bool syn : {false, true}) {
            for (const bool gp : {false, true}) {
                for (const auto &d :
                     {dfhOnInitial(sp, syn, gp),
                      dfhOnStable1(sp, syn, gp)}) {
                    EXPECT_NE(d.next, Dfh::Initial) << "no decision "
                        "may park a line back in the initial state "
                        "except Stable0's relearn row";
                    // ErrorMiss decisions never deliver data, so
                    // they must not claim a correction.
                    if (d.action == DfhAction::ErrorMiss)
                        EXPECT_FALSE(d.freeEccEntry);
                }
            }
        }
    }
}

TEST(DfhTest, DisabledIsTerminalUntilReset)
{
    // No transition function accepts Disabled as input: the cache
    // never reads disabled lines. This is a documentation-by-test of
    // the invariant enforced in KilliProtection::onReadHit.
    SUCCEED();
}

TEST(DfhTest, FreeEccEntryExactlyOnDemotionToStable0)
{
    // The freeEccEntry flag drives the controller's entry release on
    // read hits; it must fire exactly when a line demotes to b'00
    // (which no longer needs checkbits) and never on transitions
    // that keep — or will immediately re-install — protection.
    EXPECT_TRUE(dfhOnInitial(SParity::Ok, false, false).freeEccEntry);
    EXPECT_TRUE(dfhOnStable1(SParity::Ok, false, false).freeEccEntry);

    EXPECT_FALSE(
        dfhOnInitial(SParity::Single, true, true).freeEccEntry);
    EXPECT_FALSE(dfhOnStable1(SParity::Ok, true, true).freeEccEntry);
    for (const SParity sp :
         {SParity::Ok, SParity::Single, SParity::Multi}) {
        const DfhDecision d = dfhOnStable0(sp);
        EXPECT_FALSE(d.freeEccEntry); // b'00 lines hold no entry
    }
}
