/**
 * @file
 * Tests for the decoupled ECC cache: indexing by L2 set, tag-by-
 * (index,way) lookup, LRU within a set, eviction reporting (the
 * disjoint-set contention mechanism), touch coordination, and reset.
 */

#include <gtest/gtest.h>

#include "killi/ecc_cache.hh"

using namespace killi;

namespace
{
/** 16 entries, 4-way -> 4 ECC sets; host L2 is 16-way. */
EccCache
smallCache()
{
    return EccCache(16, 4, 16);
}

/** L2 line id living in L2 set @p set, way @p way (16-way L2). */
std::size_t
l2Line(std::size_t set, unsigned way)
{
    return set * 16 + way;
}
} // namespace

TEST(EccCacheTest, GeometryChecks)
{
    EccCache ecc = smallCache();
    EXPECT_EQ(ecc.numEntries(), 16u);
    EXPECT_EQ(ecc.numSets(), 4u);
    EXPECT_EQ(ecc.validEntries(), 0u);
    EXPECT_DEATH(EccCache(15, 4, 16), "");
}

TEST(EccCacheTest, AllocateThenFind)
{
    EccCache ecc = smallCache();
    std::size_t evicted = EccCache::npos;
    EccEntry *e = ecc.allocate(l2Line(3, 7), evicted);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(evicted, EccCache::npos);
    e->check = BitVec(11);
    e->check.set(3);

    EccEntry *found = ecc.find(l2Line(3, 7));
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(found->check.get(3));
    EXPECT_EQ(ecc.find(l2Line(3, 8)), nullptr);
    EXPECT_EQ(ecc.validEntries(), 1u);
}

TEST(EccCacheTest, DisjointL2SetsAliasToSameEccSet)
{
    // 4 ECC sets: L2 sets 0 and 4 map to ECC set 0 — the paper's
    // "addresses from disjoint cache sets store their checkbits in
    // the same ECC cache set".
    EccCache ecc = smallCache();
    std::size_t evicted;
    // Fill ECC set 0 with entries from L2 sets 0,4,8,12.
    for (unsigned i = 0; i < 4; ++i)
        ecc.allocate(l2Line(i * 4, 0), evicted);
    EXPECT_EQ(ecc.validEntries(), 4u);
    // One more from L2 set 16 (also ECC set 0) evicts the LRU.
    ecc.allocate(l2Line(16, 0), evicted);
    EXPECT_EQ(evicted, l2Line(0, 0));
    EXPECT_EQ(ecc.validEntries(), 4u);
    EXPECT_EQ(ecc.find(l2Line(0, 0)), nullptr);
}

TEST(EccCacheTest, TouchProtectsFromEviction)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    for (unsigned i = 0; i < 4; ++i)
        ecc.allocate(l2Line(i * 4, 0), evicted);
    // Promote the oldest; the next eviction must pick the second.
    ecc.touch(l2Line(0, 0));
    ecc.allocate(l2Line(16, 0), evicted);
    EXPECT_EQ(evicted, l2Line(4, 0));
    EXPECT_NE(ecc.find(l2Line(0, 0)), nullptr);
}

TEST(EccCacheTest, InvalidSlotsPreferredOverEviction)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    ecc.allocate(l2Line(0, 0), evicted);
    ecc.invalidate(l2Line(0, 0));
    EXPECT_EQ(ecc.validEntries(), 0u);
    ecc.allocate(l2Line(4, 0), evicted);
    EXPECT_EQ(evicted, EccCache::npos);
}

TEST(EccCacheTest, CanHostWithoutEviction)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    for (unsigned i = 0; i < 3; ++i)
        ecc.allocate(l2Line(i * 4, 0), evicted);
    // One slot still free in ECC set 0.
    EXPECT_TRUE(ecc.canHostWithoutEviction(l2Line(16, 0)));
    ecc.allocate(l2Line(12, 0), evicted);
    EXPECT_FALSE(ecc.canHostWithoutEviction(l2Line(16, 0)));
    // An already-hosted line can always be hosted.
    EXPECT_TRUE(ecc.canHostWithoutEviction(l2Line(0, 0)));
    // Other ECC sets are unaffected.
    EXPECT_TRUE(ecc.canHostWithoutEviction(l2Line(1, 0)));
}

TEST(EccCacheTest, InvalidateIsIdempotent)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    ecc.allocate(l2Line(2, 3), evicted);
    ecc.invalidate(l2Line(2, 3));
    ecc.invalidate(l2Line(2, 3)); // no-op
    EXPECT_EQ(ecc.validEntries(), 0u);
}

TEST(EccCacheTest, DuplicateAllocationPanics)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    ecc.allocate(l2Line(2, 3), evicted);
    EXPECT_DEATH(ecc.allocate(l2Line(2, 3), evicted), "");
}

TEST(EccCacheTest, ClearDropsEverything)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    for (unsigned i = 0; i < 8; ++i)
        ecc.allocate(l2Line(i, 0), evicted);
    ecc.clear();
    EXPECT_EQ(ecc.validEntries(), 0u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(ecc.find(l2Line(i, 0)), nullptr);
}

TEST(EccCacheTest, StatsTrackLifecycle)
{
    EccCache ecc = smallCache();
    std::size_t evicted;
    for (unsigned i = 0; i < 5; ++i)
        ecc.allocate(l2Line(i * 4, 0), evicted);
    EXPECT_EQ(ecc.stats().counterValue("allocs"), 5u);
    EXPECT_EQ(ecc.stats().counterValue("evictions"), 1u);
    ecc.invalidate(l2Line(16, 0));
    EXPECT_EQ(ecc.stats().counterValue("frees"), 1u);
}
