/**
 * @file
 * Behavioural tests of the KilliProtection controller with planted,
 * deterministic faults: the full DFH lifecycle (classification on
 * first use, masked-fault oscillation of §4.3, disabling), ECC-cache
 * entry management and its L2 side effects, eviction training,
 * allocation gating/priorities, the §5.6.2 masked-fault SDC window
 * and its inverted-write mitigation, and the §5.2 DECTED upgrade.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "fault/fault_map.hh"
#include "fault/voltage_model.hh"
#include "killi/killi.hh"

using namespace killi;

namespace
{

constexpr std::size_t kLineBits = 512;

/** Host mock recording backdoor invalidations. */
class MockHost : public L2Backdoor
{
  public:
    void
    invalidateLine(std::size_t lineId) override
    {
        invalidated.push_back(lineId);
    }

    Tick now() const override { return 0; }

    std::vector<std::size_t> invalidated;
};

/** 16KB, 16-way L2: 256 lines, 16 sets. */
CacheGeometry
testGeom()
{
    return CacheGeometry{16 * 1024, 16, 64, 2};
}

struct KilliFixture
{
    explicit KilliFixture(KilliParams params = KilliParams{})
        : faults(std::make_unique<FaultMap>(
              testGeom().numLines(), 720, model, /*seed=*/99))
    {
        // Nominal voltage: the random population is empty; tests
        // plant exactly the faults they want.
        faults->setVoltage(1.0);
        prot = std::make_unique<KilliProtection>(*faults, params);
        prot->attach(host, testGeom());
    }

    /** All-zero payload (stuck-at-1 faults are visible on it). */
    BitVec
    zeros() const
    {
        return BitVec(kLineBits);
    }

    /** Payload with selected bits set. */
    BitVec
    pattern(std::initializer_list<std::size_t> ones) const
    {
        BitVec v(kLineBits);
        for (const std::size_t pos : ones)
            v.set(pos);
        return v;
    }

    VoltageModel model;
    MockHost host;
    std::unique_ptr<FaultMap> faults;
    std::unique_ptr<KilliProtection> prot;
};

} // namespace

TEST(KilliTest, FaultFreeLineTrainsToStable0OnFirstHit)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    EXPECT_EQ(f.prot->dfhOf(7), Dfh::Initial);
    f.prot->onFill(7, data);
    EXPECT_NE(f.prot->eccCache().find(7), nullptr); // training entry

    const AccessResult res = f.prot->onReadHit(7, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.prot->dfhOf(7), Dfh::Stable0);
    // "Invalidate entry in ECC cache; Send clean line."
    EXPECT_EQ(f.prot->eccCache().find(7), nullptr);
}

TEST(KilliTest, VisibleSingleFaultClassifiesStable1AndCorrects)
{
    KilliFixture f;
    f.faults->plantFault(7, 100, /*stuck=*/true);
    const BitVec data = f.zeros(); // bit 100 reads back flipped
    f.prot->onFill(7, data);

    const AccessResult res = f.prot->onReadHit(7, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc); // SECDED really corrects the bit
    EXPECT_EQ(f.prot->dfhOf(7), Dfh::Stable1);
    EXPECT_NE(f.prot->eccCache().find(7), nullptr); // entry retained
    EXPECT_EQ(f.prot->stats().counterValue("corrections"), 1u);
    // codec + correction latency on this path.
    EXPECT_EQ(res.extraLatency, 2u);
}

TEST(KilliTest, MaskedFaultLooksCleanThenOscillates)
{
    // The §4.3 story: a stuck-at-0 cell holding a 0 is invisible;
    // the line trains to b'00. A later write of a 1 unmasks it; the
    // next read sees a parity mismatch, raises an error-induced
    // miss, and sends the line back to b'01 for reclassification.
    KilliFixture f;
    f.faults->plantFault(3, 40, /*stuck=*/false);

    const BitVec masked = f.zeros(); // stores 0 over a stuck-0 cell
    f.prot->onFill(3, masked);
    EXPECT_FALSE(f.prot->onReadHit(3, masked).errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(3), Dfh::Stable0); // believed fault-free

    const BitVec unmasking = f.pattern({40});
    f.prot->onWriteHit(3, unmasking);
    const AccessResult res = f.prot->onReadHit(3, unmasking);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(3), Dfh::Initial); // relearn

    // The refetch classifies it correctly this time.
    f.prot->onFill(3, unmasking);
    const AccessResult res2 = f.prot->onReadHit(3, unmasking);
    EXPECT_FALSE(res2.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(3), Dfh::Stable1);
}

TEST(KilliTest, TwoFaultsDistinctSegmentsDisable)
{
    KilliFixture f;
    f.faults->plantFault(5, 10, true);
    f.faults->plantFault(5, 11, true); // different fine segment
    const BitVec data = f.zeros();
    f.prot->onFill(5, data);
    const AccessResult res = f.prot->onReadHit(5, data);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(5), Dfh::Disabled);
    EXPECT_FALSE(f.prot->canAllocate(5));
}

TEST(KilliTest, TwoFaultsSameSegmentCaughtBySecded)
{
    // Same 33-bit training segment: parity is blind (even count in
    // one segment) but SECDED's double-error signature disables.
    KilliFixture f;
    f.faults->plantFault(5, 16, true);
    f.faults->plantFault(5, 32, true); // 16 apart: same segment
    const BitVec data = f.zeros();
    f.prot->onFill(5, data);
    const AccessResult res = f.prot->onReadHit(5, data);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(5), Dfh::Disabled);
}

TEST(KilliTest, StoredParityCellFaultHandled)
{
    // A fault in one of the four folded-parity cells (positions
    // 512..515): payload intact, classified as a metadata fault.
    KilliFixture f;
    f.faults->plantFault(9, 513, true);
    const BitVec data = f.zeros(); // folded parity = 0000, cell reads 1
    f.prot->onFill(9, data);
    const AccessResult res = f.prot->onReadHit(9, data);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.prot->dfhOf(9), Dfh::Stable1);
}

TEST(KilliTest, EvictionTrainingClassifiesWithoutDelivery)
{
    KilliFixture f;
    f.faults->plantFault(12, 200, true);
    const BitVec data = f.zeros();
    f.prot->onFill(12, data);
    EXPECT_EQ(f.prot->dfhOf(12), Dfh::Initial);

    const Cycle cost = f.prot->onEvict(12, data);
    EXPECT_GT(cost, 0u); // the read-out occupies the bank
    EXPECT_EQ(f.prot->dfhOf(12), Dfh::Stable1);
    EXPECT_EQ(f.prot->stats().counterValue("evict_trainings"), 1u);

    // Trained lines cost nothing at eviction.
    f.prot->onInvalidate(12);
    f.prot->onFill(12, data);
    EXPECT_EQ(f.prot->onEvict(12, data), 0u);
}

TEST(KilliTest, EvictionTrainingCanBeDisabled)
{
    KilliParams kp;
    kp.evictionTraining = false;
    KilliFixture f(kp);
    const BitVec data = f.zeros();
    f.prot->onFill(2, data);
    EXPECT_EQ(f.prot->onEvict(2, data), 0u);
    EXPECT_EQ(f.prot->dfhOf(2), Dfh::Initial); // unchanged
}

TEST(KilliTest, EccEntryEvictionDropsProtectedLine)
{
    // ratio 64 over 256 lines -> 4 entries in a single 4-way set:
    // a fifth concurrent training line evicts the LRU entry and the
    // host must drop the line it protected.
    KilliParams kp;
    kp.ratio = 64;
    KilliFixture f(kp);
    const BitVec data = f.zeros();
    for (std::size_t line = 0; line < 4; ++line)
        f.prot->onFill(line, data);
    EXPECT_TRUE(f.host.invalidated.empty());
    f.prot->onFill(4, data);
    ASSERT_EQ(f.host.invalidated.size(), 1u);
    EXPECT_EQ(f.host.invalidated[0], 0u);
    EXPECT_EQ(f.prot->stats().counterValue("ecc_drops"), 1u);
    EXPECT_EQ(f.prot->eccCache().find(0), nullptr);
}

TEST(KilliTest, Stable1NeedsHostableEntry)
{
    KilliParams kp;
    kp.ratio = 64; // 4 entries, one set
    KilliFixture f(kp);
    const BitVec data = f.zeros();

    // Train line 20 to Stable1.
    f.faults->plantFault(20, 7, true);
    f.prot->onFill(20, data);
    f.prot->onReadHit(20, data);
    EXPECT_EQ(f.prot->dfhOf(20), Dfh::Stable1);
    f.prot->onInvalidate(20); // line leaves the cache; entry freed

    // Fill the whole ECC cache with training lines.
    for (std::size_t line = 0; line < 4; ++line)
        f.prot->onFill(line, data);

    // The Stable1 line cannot be allocated without killing a live
    // entry — §5.2's unusable single-fault subset.
    EXPECT_FALSE(f.prot->canAllocate(20));

    // Free one entry: the line becomes usable again.
    f.prot->onInvalidate(2);
    EXPECT_TRUE(f.prot->canAllocate(20));
}

TEST(KilliTest, AllocPriorityOrdering)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    // Line 0: Initial (untouched). Line 1: train to Stable0.
    f.prot->onFill(1, data);
    f.prot->onReadHit(1, data);
    // Line 2: train to Stable1.
    f.faults->plantFault(2, 77, true);
    f.prot->onFill(2, data);
    f.prot->onReadHit(2, data);

    EXPECT_GT(f.prot->allocPriority(0), f.prot->allocPriority(1));
    EXPECT_GT(f.prot->allocPriority(1), f.prot->allocPriority(2));
}

TEST(KilliTest, AllocPriorityKnobDisables)
{
    KilliParams kp;
    kp.allocPriorityEnabled = false;
    KilliFixture f(kp);
    EXPECT_EQ(f.prot->allocPriority(0), 0);
}

TEST(KilliTest, CoordinatedReplacementProtectsHotEntries)
{
    // §4.4: touching a protected line MRU-promotes its entry; with
    // the knob off, the hot entry is the LRU victim instead.
    const auto scenario = [](bool coordinated) {
        KilliParams kp;
        kp.ratio = 64; // 4 entries, one ECC set
        kp.coordinatedReplacement = coordinated;
        KilliFixture f(kp);
        const BitVec data = f.zeros();
        // Four Stable1 lines hold all four entries, 0 is oldest.
        for (std::size_t line = 0; line < 4; ++line) {
            f.faults->plantFault(line, 7, true);
            f.prot->onFill(line, data);
            f.prot->onReadHit(line, data);
        }
        // Touch line 0: with coordination its entry becomes MRU.
        f.prot->onTouch(0);
        // A fifth training line must evict some entry.
        f.prot->onFill(4, data);
        return f.host.invalidated.back();
    };
    EXPECT_EQ(scenario(true), 1u);  // line 0 was protected
    EXPECT_EQ(scenario(false), 0u); // line 0 was the LRU victim
}

TEST(KilliTest, ResetRelearnsEverything)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    f.faults->plantFault(6, 10, true);
    f.faults->plantFault(6, 11, true);
    f.prot->onFill(6, data);
    f.prot->onReadHit(6, data);
    EXPECT_EQ(f.prot->dfhOf(6), Dfh::Disabled);

    f.prot->reset();
    EXPECT_EQ(f.prot->dfhOf(6), Dfh::Initial);
    EXPECT_TRUE(f.prot->canAllocate(6));
    EXPECT_EQ(f.prot->eccCache().validEntries(), 0u);
}

TEST(KilliTest, MaskedPairSameGroupIsTheSdcWindow)
{
    // §5.6.2: two masked faults in the same folded group (bits 0 and
    // 4 are distinct training segments but the same 4-bit group).
    // Training sees nothing; after unmasking both, the 4-bit parity
    // is blind and the read silently delivers corrupt data.
    KilliFixture f;
    f.faults->plantFault(8, 0, false);
    f.faults->plantFault(8, 4, false);

    const BitVec masked = f.zeros();
    f.prot->onFill(8, masked);
    EXPECT_FALSE(f.prot->onReadHit(8, masked).errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(8), Dfh::Stable0);

    const BitVec unmasking = f.pattern({0, 4});
    f.prot->onWriteHit(8, unmasking);
    const AccessResult res = f.prot->onReadHit(8, unmasking);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_TRUE(res.sdc) << "the documented 5.6.2 window must be "
                            "visible to the oracle";
}

TEST(KilliTest, InvertedWriteCheckClosesTheSdcWindow)
{
    KilliParams kp;
    kp.invertedWriteCheck = true;
    KilliFixture f(kp);
    f.faults->plantFault(8, 0, false);
    f.faults->plantFault(8, 4, false);

    const BitVec masked = f.zeros();
    const Cycle cost = f.prot->onFill(8, masked);
    EXPECT_GT(cost, 0u); // two extra array operations
    // Both polarities were checked: the pair is exposed at fill and
    // the line disabled before it can ever corrupt a read.
    EXPECT_EQ(f.prot->dfhOf(8), Dfh::Disabled);
    ASSERT_EQ(f.host.invalidated.size(), 1u);
    EXPECT_EQ(f.host.invalidated[0], 8u);
}

TEST(KilliTest, InvertedWriteKeepsSingleFaultLines)
{
    KilliParams kp;
    kp.invertedWriteCheck = true;
    KilliFixture f(kp);
    f.faults->plantFault(9, 33, false); // masked on zeros
    const BitVec data = f.zeros();
    f.prot->onFill(9, data);
    EXPECT_EQ(f.prot->dfhOf(9), Dfh::Stable1); // exact classification
    EXPECT_TRUE(f.host.invalidated.empty());
}

TEST(KilliTest, DectedUpgradeKeepsTwoFaultLines)
{
    KilliParams kp;
    kp.dectedStable = true;
    KilliFixture f(kp);
    f.faults->plantFault(4, 10, true);
    f.faults->plantFault(4, 11, true);
    const BitVec data = f.zeros();

    // First touch: SECDED flags the double; the line is classified
    // b'10 (<=2 faults) instead of disabled, but this copy of the
    // data is uncorrectable and must be refetched.
    f.prot->onFill(4, data);
    const AccessResult res = f.prot->onReadHit(4, data);
    EXPECT_TRUE(res.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(4), Dfh::Stable1);

    // The refill stores DECTED checkbits; both faults now correct.
    f.prot->onFill(4, data);
    const AccessResult res2 = f.prot->onReadHit(4, data);
    EXPECT_FALSE(res2.errorInducedMiss);
    EXPECT_FALSE(res2.sdc);
    EXPECT_EQ(f.prot->dfhOf(4), Dfh::Stable1);

    // Three faults still disable.
    f.faults->plantFault(4, 12, true);
    f.prot->onWriteHit(4, data);
    const AccessResult res3 = f.prot->onReadHit(4, data);
    EXPECT_TRUE(res3.errorInducedMiss);
    EXPECT_EQ(f.prot->dfhOf(4), Dfh::Disabled);
}

TEST(KilliTest, UsableLinesAndHistogram)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    const std::size_t total = testGeom().numLines();
    EXPECT_EQ(f.prot->usableLines(), total);

    f.faults->plantFault(0, 1, true);
    f.faults->plantFault(0, 2, true);
    f.prot->onFill(0, data);
    f.prot->onReadHit(0, data); // disables line 0
    f.prot->onFill(1, data);
    f.prot->onReadHit(1, data); // Stable0

    EXPECT_EQ(f.prot->usableLines(), total - 1);
    const auto hist = f.prot->dfhHistogram();
    EXPECT_EQ(hist[0], 1u);         // Stable0
    EXPECT_EQ(hist[1], total - 2);  // still Initial
    EXPECT_EQ(hist[3], 1u);         // Disabled
}

TEST(KilliTest, TransitionCountersTrack)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    f.prot->onFill(1, data);
    f.prot->onReadHit(1, data);
    EXPECT_EQ(f.prot->stats().counterValue("t_01_00"), 1u);
    f.faults->plantFault(2, 9, true);
    f.prot->onFill(2, data);
    f.prot->onReadHit(2, data);
    EXPECT_EQ(f.prot->stats().counterValue("t_01_10"), 1u);
}

// Randomized end-to-end property: for any planted fault population
// and any stored data, Killi's first-touch classification and
// delivery obey the safety contract:
//   0 visible errors -> b'00, clean delivery;
//   1 visible error  -> b'10, corrected delivery;
//   2 visible errors -> b'11, error-induced miss (SECDED's DED with
//                       clean checkbits never aliases);
//   3+ visible       -> either detected (miss) or an aliased
//                       miscorrection that the oracle MUST flag.
// In no case is corrupt data delivered with sdc == false.
class KilliClassificationProperty
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(KilliClassificationProperty, FirstTouchContract)
{
    Rng rng(1000 + GetParam());
    for (int iter = 0; iter < 120; ++iter) {
        KilliFixture f;
        const std::size_t line = rng.below(64);
        const unsigned planted = static_cast<unsigned>(rng.below(7));
        std::vector<std::size_t> positions;
        while (positions.size() < planted) {
            const std::size_t pos = rng.below(516);
            bool dup = false;
            for (const std::size_t p : positions)
                dup = dup || p == pos;
            if (!dup)
                positions.push_back(pos);
        }
        for (const std::size_t pos : positions) {
            f.faults->plantFault(line, static_cast<std::uint16_t>(pos),
                                 rng.bernoulli(0.5));
        }

        BitVec data(512);
        data.randomize(rng);
        f.prot->onFill(line, data);

        // Partition the visible errors of this data into payload
        // errors and metadata-cell (stored-parity) errors; the
        // contract is stated over the payload.
        const BitVec folded =
            SegmentedParity(512, 4).encode(data);
        unsigned visData = 0, visMeta = 0;
        for (const std::size_t pos :
             f.faults->visibleErrors(line, data, folded)) {
            if (pos < 512)
                ++visData;
            else
                ++visMeta;
        }

        const AccessResult res = f.prot->onReadHit(line, data);
        const Dfh after = f.prot->dfhOf(line);

        // Invariant A: with <= 2 payload errors, SECDED over clean
        // checkbits either corrects or detects — silent corruption
        // is impossible, whatever the metadata cells do.
        if (visData <= 2) {
            EXPECT_FALSE(res.sdc) << visData << "+" << visMeta;
        }

        if (visData == 0 && visMeta == 0) {
            EXPECT_FALSE(res.errorInducedMiss);
            EXPECT_EQ(after, Dfh::Stable0);
        } else if (visData == 1 && visMeta == 0) {
            EXPECT_FALSE(res.errorInducedMiss);
            EXPECT_EQ(after, Dfh::Stable1);
        } else if (visData == 2 && visMeta == 0) {
            EXPECT_TRUE(res.errorInducedMiss)
                << "two payload errors must never be delivered";
            EXPECT_EQ(after, Dfh::Disabled);
        } else if (visData >= 3) {
            // Detection is best-effort beyond SECDED's design point,
            // but corruption must never leave silently.
            if (!res.errorInducedMiss) {
                EXPECT_TRUE(res.sdc)
                    << visData << " payload errors delivered "
                                  "without the oracle flag";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KilliClassificationProperty,
                         ::testing::Range(0u, 6u));

TEST(KilliTest, NameReflectsConfiguration)
{
    KilliFixture plain;
    EXPECT_EQ(plain.prot->name(), "Killi(1:256)");
    KilliParams kp;
    kp.ratio = 16;
    kp.dectedStable = true;
    KilliFixture strong(kp);
    EXPECT_EQ(strong.prot->name(), "Killi(1:16)+DECTED");
}

// ---------------------------------------------------------------
// Directed coverage grown out of the kcheck harness: live-entry
// eviction of trained lines (§4.3), eviction-triggered training
// outcomes (§4.4), and dirty-line handling in write-back mode
// (§5.6.1).

TEST(KilliTest, LiveEccEvictionDropsStable1Line)
{
    // §4.3: a *trained* (b'10) line loses its checkbits when a
    // younger training line claims its ECC entry; the host must drop
    // it even though its DFH classification survives.
    KilliParams kp;
    kp.ratio = 64; // 4 entries, one 4-way set
    KilliFixture f(kp);
    const BitVec data = f.zeros();

    f.faults->plantFault(0, 100, true);
    f.prot->onFill(0, data);
    f.prot->onReadHit(0, data);
    ASSERT_EQ(f.prot->dfhOf(0), Dfh::Stable1);
    ASSERT_NE(f.prot->eccCache().find(0), nullptr);

    // Three training lines share the set; line 0's entry is LRU.
    for (std::size_t line = 1; line < 4; ++line)
        f.prot->onFill(line, data);
    EXPECT_TRUE(f.host.invalidated.empty());

    f.prot->onFill(4, data);
    ASSERT_EQ(f.host.invalidated.size(), 1u);
    EXPECT_EQ(f.host.invalidated[0], 0u);
    EXPECT_EQ(f.prot->eccCache().find(0), nullptr);
    // The DFH bits persist: the line is still known single-fault,
    // and unallocatable until an entry can host it again.
    EXPECT_EQ(f.prot->dfhOf(0), Dfh::Stable1);
    EXPECT_FALSE(f.prot->canAllocate(0));
}

TEST(KilliTest, EvictionTrainingDisablesTwoFaultLine)
{
    // §4.4 training on the way out must reach the same terminal
    // classification a read would, including b'11 — and release the
    // now-useless ECC entry immediately.
    KilliFixture f;
    f.faults->plantFault(12, 10, true);
    f.faults->plantFault(12, 11, true); // distinct fine segments
    const BitVec data = f.zeros();
    f.prot->onFill(12, data);
    ASSERT_NE(f.prot->eccCache().find(12), nullptr);

    const Cycle cost = f.prot->onEvict(12, data);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(f.prot->dfhOf(12), Dfh::Disabled);
    EXPECT_FALSE(f.prot->canAllocate(12));
    EXPECT_EQ(f.prot->eccCache().find(12), nullptr);
}

TEST(KilliTest, EvictionTrainingToStable0FreesEntry)
{
    KilliFixture f;
    const BitVec data = f.zeros();
    f.prot->onFill(13, data);
    ASSERT_NE(f.prot->eccCache().find(13), nullptr);
    f.prot->onEvict(13, data);
    EXPECT_EQ(f.prot->dfhOf(13), Dfh::Stable0);
    EXPECT_EQ(f.prot->eccCache().find(13), nullptr);
}

TEST(KilliTest, WritebackDirtyStable0GetsOnDemandCheckbits)
{
    // §5.6.1: once dirty, even a believed-fault-free (b'00) line
    // needs checkbits — the dirty copy is the only copy.
    KilliParams kp;
    kp.writebackMode = true;
    KilliFixture f(kp);
    const BitVec data = f.zeros();
    f.prot->onFill(3, data);
    f.prot->onReadHit(3, data);
    ASSERT_EQ(f.prot->dfhOf(3), Dfh::Stable0);
    ASSERT_EQ(f.prot->eccCache().find(3), nullptr);

    const BitVec written = f.pattern({50});
    f.prot->onWriteHit(3, written);
    EXPECT_NE(f.prot->eccCache().find(3), nullptr);

    const WritebackOutcome out = f.prot->onWriteback(3, written);
    EXPECT_TRUE(out.clean);
    EXPECT_EQ(out.extraCost, 0u);
    // The write-back cleaned the line; onInvalidate releases the
    // entry with nothing left to protect.
    f.prot->onInvalidate(3);
    EXPECT_EQ(f.prot->eccCache().find(3), nullptr);
}

TEST(KilliTest, WritebackDirtyUnmaskedFaultCorrects)
{
    // A masked stuck-0 cell trains the line to b'00; a later store
    // unmasks it while dirty. With no refetch path, the on-demand
    // SECDED checkbits are the only recovery — the read must correct
    // (not error-miss) and reclassify the line b'10.
    KilliParams kp;
    kp.writebackMode = true;
    KilliFixture f(kp);
    f.faults->plantFault(5, 40, false);
    const BitVec masked = f.zeros();
    f.prot->onFill(5, masked);
    f.prot->onReadHit(5, masked);
    ASSERT_EQ(f.prot->dfhOf(5), Dfh::Stable0);

    const BitVec unmasking = f.pattern({40});
    f.prot->onWriteHit(5, unmasking);
    const AccessResult res = f.prot->onReadHit(5, unmasking);
    EXPECT_FALSE(res.errorInducedMiss);
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.prot->dfhOf(5), Dfh::Stable1);
    EXPECT_EQ(f.prot->stats().counterValue("corrections"), 1u);

    const WritebackOutcome out = f.prot->onWriteback(5, unmasking);
    EXPECT_TRUE(out.clean);
    EXPECT_GT(out.extraCost, 0u);
}

TEST(KilliTest, WritebackDirtyStable1UsesDectedStrength)
{
    // §5.6.1: a dirty b'10 line is held to the failure probability of
    // a safe-voltage SECDED cache by upgrading it to DECTED strength
    // (the freed parity bits fit the wider code) — two visible faults
    // correct instead of losing the only copy. No §5.2 knob needed.
    KilliParams kp;
    kp.writebackMode = true;
    KilliFixture f(kp);
    f.faults->plantFault(8, 10, true);  // visible on zeros
    f.faults->plantFault(8, 20, false); // masked on zeros

    const BitVec data = f.zeros();
    f.prot->onFill(8, data);
    f.prot->onReadHit(8, data); // one visible fault
    ASSERT_EQ(f.prot->dfhOf(8), Dfh::Stable1);

    // The store keeps bit 10 at 0 (still visible) and writes a 1
    // over the stuck-0 cell at 20: two visible errors while dirty.
    const BitVec written = f.pattern({20});
    f.prot->onWriteHit(8, written);
    const AccessResult res = f.prot->onReadHit(8, written);
    EXPECT_FALSE(res.errorInducedMiss)
        << "DECTED-strength dirty line must not lose the only copy";
    EXPECT_FALSE(res.sdc);
    EXPECT_EQ(f.prot->dfhOf(8), Dfh::Stable1);

    const WritebackOutcome out = f.prot->onWriteback(8, written);
    EXPECT_TRUE(out.clean);
    EXPECT_GT(out.extraCost, 0u);
}
