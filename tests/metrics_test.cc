/**
 * @file
 * Tests for the kmetrics plane: registry semantics (idempotent
 * re-registration, kind-conflict panics, callback instruments,
 * concurrent updates), histogram bucket/quantile edge cases (NaN,
 * huge, zero/negative samples), Prometheus text exposition
 * (escaping, histogram series consistency, byte determinism), and
 * the ktop snapshot shape, pinned against a golden file.
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/dashboard.hh"
#include "metrics/metrics.hh"

using namespace killi;
using namespace killi::metrics;

namespace
{

/** The quantile a log histogram can be off by is one bucket, i.e. a
 *  factor of `growth`; assert within that. */
void
expectWithinBucket(double got, double want, double growth)
{
    EXPECT_GE(got, want / growth);
    EXPECT_LE(got, want * growth);
}

} // namespace

// ---- counters and gauges -------------------------------------------

TEST(MetricsRegistry, CounterAndGaugeBasics)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("killi_widgets_total", "widgets");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    Gauge &g = reg.gauge("killi_depth", "depth");
    g.set(3.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameInstrument)
{
    MetricsRegistry reg;
    Counter &a =
        reg.counter("killi_x_total", "x", {{"kind", "a"}});
    Counter &b =
        reg.counter("killi_x_total", "x", {{"kind", "a"}});
    EXPECT_EQ(&a, &b);
    Counter &other =
        reg.counter("killi_x_total", "x", {{"kind", "b"}});
    EXPECT_NE(&a, &other);

    // Label order is canonicalized: the same set in any order is the
    // same instrument.
    Gauge &g1 = reg.gauge("killi_g", "g",
                          {{"a", "1"}, {"b", "2"}});
    Gauge &g2 = reg.gauge("killi_g", "g",
                          {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistryDeath, KindConflictPanics)
{
    MetricsRegistry reg;
    reg.counter("killi_conflict", "as counter");
    EXPECT_DEATH(reg.gauge("killi_conflict", "as gauge"),
                 "killi_conflict");
}

TEST(MetricsRegistry, CallbackInstrumentsArePulledAtExposition)
{
    MetricsRegistry reg;
    std::uint64_t backing = 7;
    reg.counterFn("killi_cb_total", "callback counter", {},
                  [&backing] { return backing; });
    double g = 1.25;
    reg.gaugeFn("killi_cb_gauge", "callback gauge", {},
                [&g] { return g; });

    std::string text = reg.prometheusText();
    EXPECT_NE(text.find("killi_cb_total 7"), std::string::npos)
        << text;
    EXPECT_NE(text.find("killi_cb_gauge 1.25"), std::string::npos);

    backing = 9;
    g = 2.5;
    text = reg.prometheusText();
    EXPECT_NE(text.find("killi_cb_total 9"), std::string::npos);
    EXPECT_NE(text.find("killi_cb_gauge 2.5"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("killi_contended_total", "contended");
    Histogram &h = reg.histogram("killi_contended_seconds", "h");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(1e-4 * (t + 1));
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(c.value(), std::uint64_t(kThreads * kPerThread));
    EXPECT_EQ(h.count(), std::uint64_t(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(h.max(), 8e-4);
}

// ---- histogram edge cases ------------------------------------------

TEST(Histogram, BucketRoutingAndCumulative)
{
    // Bounds 1, 2, 4 (+Inf implicit).
    Histogram h(HistogramSpec{1.0, 2.0, 3});
    ASSERT_EQ(h.bounds().size(), 3u);
    EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);

    h.observe(0.5);   // bucket 0
    h.observe(-3.0);  // <= 0 lands in bucket 0
    h.observe(1.0);   // bucket 0 (bounds are inclusive)
    h.observe(1.5);   // bucket 1
    h.observe(4.0);   // bucket 2
    h.observe(100.0); // +Inf overflow

    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.cumulative(0), 3u);
    EXPECT_EQ(h.cumulative(1), 4u);
    EXPECT_EQ(h.cumulative(2), 5u);
    EXPECT_EQ(h.cumulative(3), 6u); // +Inf == count()
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 - 3.0 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(Histogram, QuantilesInterpolateAndClampToMax)
{
    Histogram h(HistogramSpec{1e-3, 2.0, 20});
    for (int i = 0; i < 100; ++i)
        h.observe(0.010); // all in one bucket
    expectWithinBucket(h.quantile(0.5), 0.010, 2.0);
    // The top of the estimate is clamped to the exact observed max.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.010);

    h.observe(5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
    expectWithinBucket(h.quantile(0.5), 0.010, 2.0);
}

TEST(Histogram, EmptyIsNaN)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.max()));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, NaNSamplesAreCountedButExcludedFromSumAndMax)
{
    Histogram h(HistogramSpec{1.0, 2.0, 4});
    h.observe(1.0);
    h.observe(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
    // The NaN is routed to the overflow bucket, so quantiles stay
    // finite (clamped to the observed max).
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
    EXPECT_EQ(h.cumulative(h.bounds().size()), 2u);
}

TEST(Histogram, HugeSamplesOverflowToInfBucket)
{
    Histogram h(HistogramSpec{1e-4, 2.0, 23});
    h.observe(1e300);
    h.observe(std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.cumulative(h.bounds().size() - 1), 0u);
    EXPECT_EQ(h.cumulative(h.bounds().size()), 2u);
    EXPECT_TRUE(std::isinf(h.max()));
    EXPECT_TRUE(std::isinf(h.quantile(0.99)));
}

// ---- exposition ----------------------------------------------------

TEST(Exposition, PrometheusTextEscapesHelpAndLabelValues)
{
    MetricsRegistry reg;
    reg.counter("killi_esc_total", "line1\nline2 back\\slash",
                {{"path", "a\"b\\c\nd"}})
        .inc();
    const std::string text = reg.prometheusText();
    EXPECT_NE(
        text.find(
            "# HELP killi_esc_total line1\\nline2 back\\\\slash"),
        std::string::npos)
        << text;
    EXPECT_NE(
        text.find("killi_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
        std::string::npos)
        << text;
}

TEST(Exposition, HistogramSeriesAreConsistentAndDeterministic)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("killi_lat_seconds", "latency", {},
                                 HistogramSpec{1e-3, 10.0, 4});
    h.observe(0.5);
    h.observe(2.0);
    h.observe(1e9); // overflow

    const std::string text = reg.prometheusText();
    EXPECT_NE(
        text.find("killi_lat_seconds_bucket{le=\"+Inf\"} 3"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("killi_lat_seconds_count 3"),
              std::string::npos);
    // TYPE header present, and exposition is byte-deterministic.
    EXPECT_NE(text.find("# TYPE killi_lat_seconds histogram"),
              std::string::npos);
    EXPECT_EQ(text, reg.prometheusText());
}

TEST(Exposition, JsonAndTextAgreeOnCounterValues)
{
    MetricsRegistry reg;
    reg.counter("killi_agree_total", "agree").inc(12345);
    const Json doc = reg.toJson();
    const Json &fams = doc.at("families");
    ASSERT_EQ(fams.size(), 1u);
    EXPECT_EQ(fams.at(std::size_t{0}).at("name").asString(),
              "killi_agree_total");
    EXPECT_EQ(fams.at(std::size_t{0})
                  .at("metrics")
                  .at(std::size_t{0})
                  .at("value")
                  .asDouble(),
              12345.0);
    EXPECT_NE(reg.prometheusText().find("killi_agree_total 12345"),
              std::string::npos);
}

TEST(Exposition, FormatValueRoundTrips)
{
    EXPECT_EQ(formatValue(42.0), "42");
    EXPECT_EQ(formatValue(0.25), "0.25");
    EXPECT_EQ(formatValue(
                  std::numeric_limits<double>::infinity()),
              "+Inf");
    const double third = 1.0 / 3.0;
    EXPECT_DOUBLE_EQ(std::stod(formatValue(third)), third);
}

// ---- ktop ----------------------------------------------------------

namespace
{

/** A deterministic kserved-shaped registry for snapshot tests. */
void
populateServedFamilies(MetricsRegistry &reg)
{
    reg.gauge("kserved_uptime_seconds", "uptime").set(123.0);
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "done"}})
        .inc(5);
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "failed"}})
        .inc(1);
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "cancelled"}});
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "rejected"}})
        .inc(2);
    reg.counter("kserved_cache_hits_total", "hits").inc(3);
    reg.counter("kserved_cache_misses_total", "misses").inc(6);
    reg.counter("kserved_cache_insertions_total", "ins").inc(6);
    reg.counter("kserved_cache_evictions_total", "ev").inc(1);
    reg.gauge("kserved_cache_bytes", "bytes").set(4096);
    reg.gauge("kserved_queue_depth", "depth").set(2);
    reg.gauge("kserved_jobs_running", "running").set(1);
    reg.gauge("kserved_queue_peak_depth", "peak").set(4);
    reg.counter("kserved_admissions_total", "adm").inc(8);
    reg.counter("kserved_rejections_total", "rej").inc(2);
    reg.counter("kserved_cancellations_total", "can");
    reg.counter("kserved_connections_total", "conns").inc(9);
    reg.gauge("kserved_connections_active", "active").set(1);
    reg.counter("kserved_frames_received_total", "in").inc(20);
    reg.counter("kserved_frames_sent_total", "out").inc(30);
    reg.counter("kserved_protocol_errors_total", "errs");
    reg.counter("kserved_outbox_bytes_total", "bytes").inc(10000);
    reg.counter("ktrace_dropped_records_total", "drops").inc(11);
    Histogram &lat =
        reg.histogram("kserved_job_seconds", "latency");
    lat.observe(0.25);
    lat.observe(0.25);
    lat.observe(1.0);
    for (const char *stage : {"decode", "queue", "setup", "run",
                              "serialize", "reply"}) {
        reg.histogram("kserved_job_stage_seconds", "stages",
                      {{"stage", stage}})
            .observe(0.125);
    }
}

} // namespace

TEST(Ktop, SnapshotMatchesGolden)
{
    MetricsRegistry reg;
    populateServedFamilies(reg);
    const Json snapshot = ktopSnapshot(reg.toJson());
    const std::string got = snapshot.toString(2) + "\n";

    const std::string path =
        std::string(KMETRICS_GOLDEN_DIR) + "/ktop_snapshot.json";
    if (std::getenv("KMETRICS_REGEN_GOLDEN")) {
        std::ofstream out(path);
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "ktop --once --json shape drifted; if intentional, "
           "refresh the golden:\n"
        << got;
}

TEST(Ktop, SnapshotOfEmptyRegistryIsAllZeros)
{
    MetricsRegistry reg;
    const Json snap = ktopSnapshot(reg.toJson());
    EXPECT_EQ(snap.at("jobs").at("total").asDouble(), 0.0);
    EXPECT_EQ(snap.at("cache").at("hit_rate").asDouble(), 0.0);
    EXPECT_EQ(snap.at("latency").at("count").asInt(), 0);
    EXPECT_TRUE(snap.at("latency").at("p50_s").isNull());
    EXPECT_EQ(
        snap.at("trace").at("dropped_records").asDouble(), 0.0);
}

TEST(Ktop, SparklineScalesToMax)
{
    EXPECT_EQ(sparkline({}), "");
    const std::string s = sparkline({0.0, 4.0, 8.0});
    EXPECT_EQ(s, " ▄█");
    // NaN renders as a blank column.
    const std::string withNan =
        sparkline({std::numeric_limits<double>::quiet_NaN(), 1.0});
    EXPECT_EQ(withNan, " █");
}

TEST(Ktop, RenderProducesADashboard)
{
    MetricsRegistry reg;
    populateServedFamilies(reg);
    KtopModel model;
    const std::string frame =
        model.render(ktopSnapshot(reg.toJson()), 0.0);
    EXPECT_NE(frame.find("ktop — kserved up 123s"),
              std::string::npos)
        << frame;
    EXPECT_NE(frame.find("done 5"), std::string::npos);
    EXPECT_NE(frame.find("! ktrace dropped 11 records"),
              std::string::npos);

    // Second tick with 2 more done jobs: the rate line moves.
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "done"}})
        .inc(2);
    const std::string frame2 =
        model.render(ktopSnapshot(reg.toJson()), 1.0);
    EXPECT_NE(frame2.find("jobs 2.0/s"), std::string::npos)
        << frame2;
}

TEST(Ktop, FirstSampleAndZeroDtRatesAreZero)
{
    MetricsRegistry reg;
    populateServedFamilies(reg);
    KtopModel model;
    // First sample: no prior snapshot to delta against, so the jobs
    // done since boot must not be reported as a rate spike.
    const std::string first =
        model.render(ktopSnapshot(reg.toJson()), 5.0);
    EXPECT_NE(first.find("jobs 0.0/s"), std::string::npos) << first;
    // dt <= 0 refresh (an immediate redraw): still no rate, even
    // with a prior snapshot and counters that moved.
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "done"}})
        .inc(3);
    const std::string redraw =
        model.render(ktopSnapshot(reg.toJson()), 0.0);
    EXPECT_NE(redraw.find("jobs 0.0/s"), std::string::npos)
        << redraw;
    // Only a real interval after a real snapshot yields a rate.
    reg.counter("kserved_jobs_total", "jobs",
                {{"outcome", "done"}})
        .inc(4);
    const std::string frame =
        model.render(ktopSnapshot(reg.toJson()), 2.0);
    EXPECT_NE(frame.find("jobs 2.0/s"), std::string::npos) << frame;
}
