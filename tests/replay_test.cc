/**
 * @file
 * Deterministic record-replay and divergence bisection (src/replay).
 *
 * Covers the PR's acceptance criteria end to end: a fig4 sweep
 * point, a kserved job (over a loopback server), and a kcheck
 * scenario each record and replay bit-identically on the same
 * build; tampered recordings are flagged at their first divergent
 * stream entry; and the bisector, fed two runs that differ by one
 * seeded SECDED decode perturbation at a *known* (tick, seq),
 * reports exactly that site in O(log n) digest probes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/sweep.hh"
#include "check/checker.hh"
#include "check/scenario.hh"
#include "common/bitvec.hh"
#include "common/hotpath.hh"
#include "common/log.hh"
#include "common/replay_probe.hh"
#include "common/rng.hh"
#include "ecc/secded.hh"
#include "replay/bisect.hh"
#include "replay/recording.hh"
#include "replay/session.hh"
#include "serve/client/client.hh"
#include "serve/server.hh"
#include "sim/event_queue.hh"

namespace killi::replay
{
namespace
{

/** The cheapest interesting sweep point: one workload, one scheme. */
SweepOptions
tinySweep()
{
    SweepOptions opt;
    opt.scale = 0.01;
    opt.warmupPasses = 0;
    opt.workloads = {"stream"};
    opt.schemes = {"Killi 1:256"};
    opt.jobs = 1;
    return opt;
}

// ---------------------------------------------------------------
// RngSegmentBuilder
// ---------------------------------------------------------------

TEST(RngSegmentBuilder, SplitsOnStreamLabelAndPopChanges)
{
    RngSegmentBuilder builder;
    PendingSegment seg;
    EXPECT_FALSE(builder.feed("faultmap", 0, 11, seg));
    EXPECT_FALSE(builder.feed("faultmap", 0, 22, seg));
    // Stream change closes the faultmap segment.
    ASSERT_TRUE(builder.feed("?", 0, 33, seg));
    EXPECT_EQ(seg.stream, "faultmap");
    EXPECT_EQ(seg.pop, 0u);
    EXPECT_EQ(seg.count, 2u);
    std::uint64_t expect = textDigest("faultmap");
    expect = rollDigest(expect, 11);
    expect = rollDigest(expect, 22);
    EXPECT_EQ(seg.digest, expect);
    // Pop change closes the next one.
    ASSERT_TRUE(builder.feed("?", 1, 44, seg));
    EXPECT_EQ(seg.stream, "?");
    EXPECT_EQ(seg.pop, 0u);
    EXPECT_EQ(seg.count, 1u);
    // Flush emits the in-flight tail exactly once.
    ASSERT_TRUE(builder.flush(seg));
    EXPECT_EQ(seg.pop, 1u);
    EXPECT_EQ(seg.count, 1u);
    EXPECT_FALSE(builder.flush(seg));
}

// ---------------------------------------------------------------
// Directed mini-simulation harness
// ---------------------------------------------------------------

/**
 * A deterministic toy run with a fully known schedule: eight events
 * at ticks 10..80, each performing one SECDED decode of a clean
 * codeword and one RNG draw — plus one *extra* draw whenever the
 * decode reports anything but NoError. Arming the hot-path decode
 * perturbation at evaluation N therefore changes the draw count of
 * exactly pop N, i.e. the injected divergence site is (tick, seq)
 * of the Nth event, known a priori.
 */
constexpr int kHarnessEvents = 8;

std::string
runHarness(ReplayProbe *probe, std::uint64_t perturbNth)
{
    const ScopedReplayProbe scope(probe);
    EventQueue q;
    const Secded code(64);
    Rng rng(7);
    std::string log;
    setHotpathPerturbDecode(perturbNth);
    for (int i = 0; i < kHarnessEvents; ++i) {
        q.schedule(Tick(10 * (i + 1)), [&] {
            BitVec data(64);
            BitVec check = code.encode(data);
            const DecodeResult r = code.decode(data, check);
            rng.next64();
            if (r.status != DecodeStatus::NoError)
                rng.next64();
            log += r.status == DecodeStatus::NoError ? '.' : 'X';
        });
    }
    q.run();
    setHotpathPerturbDecode(0);
    return log;
}

Recording
recordHarness(std::uint64_t perturbNth)
{
    Recorder recorder("test");
    recorder.recording().perturbDecode = perturbNth;
    const std::string result = runHarness(&recorder, perturbNth);
    recorder.finish(result);
    return std::move(recorder.recording());
}

TEST(ReplayHarness, CleanRunRecordsOneSegmentPerPop)
{
    const Recording rec = recordHarness(0);
    EXPECT_EQ(rec.pops.size(), std::size_t(kHarnessEvents));
    ASSERT_EQ(rec.rng.size(), std::size_t(kHarnessEvents));
    for (int i = 0; i < kHarnessEvents; ++i) {
        EXPECT_EQ(rec.pops[i].when, Tick(10 * (i + 1)));
        EXPECT_EQ(rec.rng[i].pop, std::uint64_t(i + 1));
        EXPECT_EQ(rec.rng[i].count, 1u);
    }
    EXPECT_FALSE(rec.resultDigest.empty());
}

TEST(ReplayHarness, ReplayerVerifiesCleanReRun)
{
    const Recording rec = recordHarness(0);
    Replayer rep(rec);
    const std::string result = runHarness(&rep, 0);
    rep.finish(result);
    EXPECT_TRUE(rep.ok()) << rep.divergence().describe();
}

TEST(ReplayHarness, ReplayerFlagsSeededDecodeAtExactTickSeq)
{
    // The 4th SECDED evaluation happens inside the 4th event, at
    // tick 40 — the replayer must name exactly that site.
    const Recording rec = recordHarness(0);
    Replayer rep(rec);
    const std::string result = runHarness(&rep, 4);
    rep.finish(result);
    ASSERT_FALSE(rep.ok());
    const Divergence &div = rep.divergence();
    EXPECT_EQ(div.stream, "rng");
    EXPECT_EQ(div.tick, Tick(40));
    EXPECT_EQ(div.seq, rec.pops[3].seq);
}

TEST(ReplayBisect, PinpointsSeededDecodeDivergence)
{
    const Recording a = recordHarness(0);
    const Recording b = recordHarness(4);
    const BisectReport rep = bisectRecordings(a, b);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.stream, "rng");
    EXPECT_EQ(rep.index, 3u); // segments for pops 1..8; pop 4 differs
    EXPECT_EQ(rep.tick, Tick(40));
    EXPECT_EQ(rep.seq, a.pops[3].seq);
    // 3 streams, <= ~log2(n)+1 digest probes each.
    EXPECT_LE(rep.probes, 12u);
}

TEST(ReplayBisect, IdenticalRecordingsAreClean)
{
    const Recording a = recordHarness(0);
    const Recording b = recordHarness(0);
    const BisectReport rep = bisectRecordings(a, b);
    EXPECT_FALSE(rep.diverged) << rep.summary();
}

TEST(ReplayBisect, ProbeCountStaysLogarithmic)
{
    // Two synthetic pop streams of 4096 entries differing only at
    // index 2500: the bisector must land exactly there in O(log n)
    // probes, not scan linearly.
    Recording a, b;
    a.tool = b.tool = "test";
    for (std::uint64_t i = 0; i < 4096; ++i) {
        EventPop p;
        p.when = Tick(i);
        p.seq = i;
        a.pops.push_back(p);
        if (i == 2500)
            p.priority = 1;
        b.pops.push_back(p);
    }
    a.resultDigest = b.resultDigest = "same";
    const BisectReport rep = bisectRecordings(a, b);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.stream, "pop");
    EXPECT_EQ(rep.index, 2500u);
    EXPECT_LE(rep.probes, 3 * 13u);
}

TEST(ReplayBisect, ResultOnlyDivergenceFallsBackToResultStream)
{
    Recording a = recordHarness(0);
    Recording b = recordHarness(0);
    b.resultDigest[0] = b.resultDigest[0] == '0' ? '1' : '0';
    const BisectReport rep = bisectRecordings(a, b);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.stream, "result");
}

// ---------------------------------------------------------------
// ScopedLogClock under replay
// ---------------------------------------------------------------

TEST(ReplayHarness, ScopedLogClockTimestampsAreReplayDeterministic)
{
    // Log timestamps come from the simulated clock, so a replayed
    // run must emit byte-identical "@<tick>" prefixes — wall time
    // never leaks in.
    const auto loggedRun = [](ReplayProbe *probe) {
        ScopedLogCapture capture;
        const ScopedReplayProbe scope(probe);
        EventQueue q;
        const ScopedLogClock clock([&q] { return q.curTick(); });
        Rng rng(3);
        for (int i = 0; i < 3; ++i) {
            q.schedule(Tick(5 * (i + 1)), [&] {
                rng.next64();
                inform("harness event");
            });
        }
        q.run();
        return capture.messages();
    };

    Recorder recorder("test");
    const auto recorded = loggedRun(&recorder);
    recorder.finish("logclock");

    Replayer rep(recorder.recording());
    const auto replayed = loggedRun(&rep);
    rep.finish("logclock");

    EXPECT_TRUE(rep.ok()) << rep.divergence().describe();
    ASSERT_EQ(recorded.size(), 3u);
    EXPECT_NE(recorded[0].find("@5"), std::string::npos)
        << recorded[0];
    EXPECT_EQ(recorded, replayed);
}

// ---------------------------------------------------------------
// Recording file format
// ---------------------------------------------------------------

TEST(RecordingFormat, FileRoundTripPreservesStreams)
{
    const Recording rec = recordHarness(0);
    const std::string path = "replay_test_roundtrip.krr.json";
    rec.writeFile(path);
    const Recording back = Recording::loadFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(back.tool, rec.tool);
    EXPECT_EQ(back.resultDigest, rec.resultDigest);
    ASSERT_EQ(back.rng.size(), rec.rng.size());
    ASSERT_EQ(back.pops.size(), rec.pops.size());
    for (std::size_t i = 0; i < rec.rng.size(); ++i) {
        // Digests exceed 2^53; the string encoding must preserve
        // them exactly through the double-backed JSON layer.
        EXPECT_EQ(back.rng[i].digest, rec.rng[i].digest);
        EXPECT_EQ(back.rng[i].count, rec.rng[i].count);
        EXPECT_EQ(back.rng[i].pop, rec.rng[i].pop);
    }
    for (std::size_t i = 0; i < rec.pops.size(); ++i) {
        EXPECT_EQ(back.pops[i].when, rec.pops[i].when);
        EXPECT_EQ(back.pops[i].seq, rec.pops[i].seq);
    }
    const BisectReport rep = bisectRecordings(rec, back);
    EXPECT_FALSE(rep.diverged) << rep.summary();
}

TEST(RecordingFormat, RejectsMalformedDocuments)
{
    Recording out;
    std::string err;
    EXPECT_FALSE(
        Recording::tryFromJson(Json::string("nope"), out, &err));
    EXPECT_FALSE(err.empty());
    Json doc = recordHarness(0).toJson();
    doc.set("format", Json::string("killi-recording-v2"));
    EXPECT_FALSE(Recording::tryFromJson(doc, out, &err));
    EXPECT_NE(err.find(kRecordingFormat), std::string::npos) << err;
}

// ---------------------------------------------------------------
// Sweep record/replay (the fig4 acceptance point)
// ---------------------------------------------------------------

TEST(ReplaySweep, RecordThenReplayIsBitIdentical)
{
    const SweepSession recorded = recordSweep(tinySweep());
    EXPECT_FALSE(recorded.recording.rng.empty());
    EXPECT_FALSE(recorded.recording.pops.empty());
    EXPECT_EQ(recorded.recording.marks.size(), 2u); // 2 sweep points

    const SweepSession replayed = replaySweep(recorded.recording);
    EXPECT_TRUE(replayed.verified)
        << replayed.divergence.describe();
    EXPECT_EQ(replayed.resultText, recorded.resultText);
}

TEST(ReplaySweep, TamperedRngSegmentIsFlaggedAsFaultMapDivergence)
{
    const SweepSession recorded = recordSweep(tinySweep());
    Recording tampered = recorded.recording;
    ASSERT_FALSE(tampered.rng.empty());
    tampered.rng[0].digest ^= 1;

    const SweepSession replayed = replaySweep(tampered);
    ASSERT_FALSE(replayed.verified);
    EXPECT_EQ(replayed.divergence.stream, "rng");
    EXPECT_EQ(replayed.divergence.index, 0u);
    // The first segment is the fault-map construction stream.
    EXPECT_EQ(replayed.divergence.rngStream, "faultmap");
}

TEST(ReplaySweep, CrossModeBisectPinpointsFaultMapSampling)
{
    // Reference mode swaps the fault map to per-bit sampling — a
    // genuinely different draw stream from the very first segment.
    // The honest bisect verdict is therefore "diverged at fault-map
    // construction", not a later in-sim site.
    RunMode sliced;
    RunMode reference;
    reference.reference = true;
    const SweepSession a = recordSweep(tinySweep(), sliced);
    const SweepSession b = recordSweep(tinySweep(), reference);
    ASSERT_FALSE(a.recording.rng.empty());
    ASSERT_TRUE(b.recording.referenceMode);
    const BisectReport rep =
        bisectRecordings(a.recording, b.recording);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.stream, "rng");
    EXPECT_EQ(rep.index, 0u);
    EXPECT_NE(rep.a.find("faultmap"), std::string::npos) << rep.a;
}

// ---------------------------------------------------------------
// kcheck scenario record/replay
// ---------------------------------------------------------------

TEST(ReplayScenario, RecordThenReplayIsBitIdentical)
{
    const check::Scenario sc = check::Scenario::generate(1234);
    const CheckSession recorded = recordScenario(sc);
    EXPECT_FALSE(recorded.recording.rng.empty());
    EXPECT_EQ(recorded.recording.tool, "kcheck");

    const CheckSession replayed = replayScenario(recorded.recording);
    EXPECT_TRUE(replayed.verified)
        << replayed.divergence.describe();
    EXPECT_EQ(replayed.resultText, recorded.resultText);
}

TEST(ReplayScenario, TamperedResultDigestIsFlagged)
{
    const check::Scenario sc = check::Scenario::generate(99);
    const CheckSession recorded = recordScenario(sc);
    Recording tampered = recorded.recording;
    tampered.resultDigest[0] =
        tampered.resultDigest[0] == '0' ? '1' : '0';
    const CheckSession replayed = replayScenario(tampered);
    ASSERT_FALSE(replayed.verified);
    EXPECT_EQ(replayed.divergence.stream, "result");
}

// ---------------------------------------------------------------
// kserved record/replay jobs
// ---------------------------------------------------------------

Json
tinySubmit()
{
    Json options = Json::object();
    options.set("scale", Json::number(0.002));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(std::uint64_t{42}));
    options.set("workloads", Json::string("spmv"));
    options.set("schemes", Json::string("DECTED"));
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    req.set("options", std::move(options));
    req.set("stream", Json::boolean(false));
    return req;
}

TEST(ReplayServe, RecordedJobReplaysBitIdenticalAndBypassesCache)
{
    serve::ServerOptions so;
    so.port = 0;
    so.threads = 2;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    serve::Client client;
    ASSERT_TRUE(client.connectTcp(server.boundPort(), &err)) << err;
    ScopedLogCapture quiet;

    // Plain submit populates the cache...
    Json plain;
    ASSERT_TRUE(client.submit(tinySubmit(), plain, {}, &err)) << err;
    ASSERT_EQ(plain.at("outcome").asString(), "done");

    // ...but a record job for the same point must bypass it (no
    // cached:true, and a recording in the result).
    Json recReq = tinySubmit();
    recReq.set("record", Json::boolean(true));
    Json recorded;
    ASSERT_TRUE(client.submit(recReq, recorded, {}, &err)) << err;
    ASSERT_EQ(recorded.at("outcome").asString(), "done");
    EXPECT_FALSE(recorded.at("cached").asBool());
    ASSERT_TRUE(recorded.at("result").contains("recording"));

    // The recorded job's sweep body matches the plain run.
    EXPECT_EQ(
        recorded.at("result").at("workloads").toString(0),
        plain.at("result").at("workloads").toString(0));

    // A replay job re-runs from the recording alone, bit-identical.
    Json repReq = Json::object();
    repReq.set("type", Json::string("submit"));
    repReq.set("replay", recorded.at("result").at("recording"));
    repReq.set("stream", Json::boolean(false));
    Json replayed;
    ASSERT_TRUE(client.submit(repReq, replayed, {}, &err)) << err;
    ASSERT_EQ(replayed.at("outcome").asString(), "done");
    EXPECT_FALSE(replayed.at("cached").asBool());
    const Json &verdict = replayed.at("result").at("replay");
    EXPECT_TRUE(verdict.at("verified").asBool())
        << verdict.toString(0);

    // The record/replay jobs never polluted the cache: a plain
    // submit still hits the original entry, whose stored bytes
    // carry no recording.
    Json again;
    ASSERT_TRUE(client.submit(tinySubmit(), again, {}, &err)) << err;
    EXPECT_TRUE(again.at("cached").asBool());
    EXPECT_FALSE(again.at("result").contains("recording"));
    EXPECT_EQ(again.at("result").toString(0),
              plain.at("result").toString(0));

    server.stop();
}

TEST(ReplayServe, ReplayJobRejectsOptionsAlongside)
{
    serve::ServerOptions so;
    so.port = 0;
    so.threads = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    serve::Client client;
    ASSERT_TRUE(client.connectTcp(server.boundPort(), &err)) << err;

    const Recording rec = recordHarness(0);
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    req.set("replay", rec.toJson());
    req.set("options", Json::object());
    ASSERT_TRUE(client.send(req));
    Json frame;
    ASSERT_TRUE(client.recvWithin(frame, 30000, &err)) << err;
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "bad_request");
    server.stop();
}

} // namespace
} // namespace killi::replay
