/**
 * @file
 * Tests for the parallel experiment runner and the typed-options /
 * machine-readable-results API it ships with: thread-pool execution,
 * retry/skip semantics, the parallel==serial bit-identity contract
 * of the evaluation sweep, Options validation, and the JSON layer's
 * round-trips (StatGroup, RunResult, sweep results files).
 */

#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sweep.hh"
#include "common/json.hh"
#include "common/options.hh"
#include "common/stats.hh"
#include "gpu/gpu_system.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"

using namespace killi;

namespace
{

/** Parse "key=value" test arguments through a real argv. */
void
parseArgs(Options &opts, std::vector<std::string> args)
{
    std::vector<char *> argv;
    static char name[] = "runner_test";
    argv.push_back(name);
    for (auto &arg : args)
        argv.push_back(arg.data());
    opts.parse(static_cast<int>(argv.size()), argv.data());
}

RunnerOptions
quiet(unsigned jobs, unsigned retries = 1, bool failFast = false)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    opt.retries = retries;
    opt.failFast = failFast;
    opt.verbose = false;
    return opt;
}

} // namespace

// ---------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitCanBeCalledRepeatedly)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    pool.wait(); // nothing queued
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
    pool.submit([&] { ++done; });
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, SingleThreadPoolStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, DrainClosesIntakeButFinishesAcceptedWork)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(pool.submit([&] { ++done; }));
    EXPECT_FALSE(pool.draining());
    pool.drain();
    EXPECT_TRUE(pool.draining());
    EXPECT_EQ(done.load(), 20); // everything accepted ran
    // The intake is closed: late work is refused and dropped.
    EXPECT_FALSE(pool.submit([&] { ++done; }));
    pool.wait();
    EXPECT_EQ(done.load(), 20);
}

TEST(CancelToken, StickyUntilReset)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

// ---------------------------------------------------------------
// ExperimentRunner
// ---------------------------------------------------------------

TEST(ExperimentRunner, RunsEveryJobInline)
{
    std::vector<int> hits(8, 0);
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < hits.size(); ++i)
        jobs.push_back({"job" + std::to_string(i),
                        [&hits, i] { hits[i] = 1; }});

    ExperimentRunner runner(quiet(1));
    const CampaignReport report = runner.run(jobs);

    ASSERT_EQ(report.jobs.size(), hits.size());
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.threads, 1u);
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1);
        EXPECT_EQ(report.jobs[i].outcome, JobOutcome::Done);
        EXPECT_EQ(report.jobs[i].name, "job" + std::to_string(i));
        EXPECT_EQ(report.jobs[i].attempts, 1u);
    }
}

TEST(ExperimentRunner, RunsEveryJobOnThreads)
{
    std::vector<int> hits(32, 0);
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < hits.size(); ++i)
        jobs.push_back({"job" + std::to_string(i),
                        [&hits, i] { hits[i] = 1; }});

    ExperimentRunner runner(quiet(4));
    const CampaignReport report = runner.run(jobs);

    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.threads, 4u);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1);
}

TEST(ExperimentRunner, RetriesFlakyJobUntilItSucceeds)
{
    std::atomic<int> attempts{0};
    const std::vector<Job> jobs{
        {"flaky", [&] {
             if (++attempts == 1)
                 throw std::runtime_error("transient");
         }}};

    ExperimentRunner runner(quiet(1, /*retries=*/1));
    const CampaignReport report = runner.run(jobs);

    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::Done);
    EXPECT_EQ(report.jobs[0].attempts, 2u);
    EXPECT_EQ(attempts.load(), 2);
}

TEST(ExperimentRunner, RecordsPermanentFailureAndContinues)
{
    std::atomic<int> attempts{0};
    int otherRan = 0;
    const std::vector<Job> jobs{
        {"broken", [&] {
             ++attempts;
             throw std::runtime_error("always fails");
         }},
        {"fine", [&] { otherRan = 1; }}};

    ExperimentRunner runner(quiet(1, /*retries=*/2));
    const CampaignReport report = runner.run(jobs);

    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_EQ(report.skipped(), 0u);
    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::Failed);
    EXPECT_EQ(report.jobs[0].attempts, 3u); // 1 + 2 retries
    EXPECT_EQ(report.jobs[0].error, "always fails");
    EXPECT_EQ(attempts.load(), 3);
    EXPECT_EQ(report.jobs[1].outcome, JobOutcome::Done);
    EXPECT_EQ(otherRan, 1);
}

TEST(ExperimentRunner, FailFastSkipsQueuedJobs)
{
    int laterRan = 0;
    const std::vector<Job> jobs{
        {"first", [] { throw std::runtime_error("boom"); }},
        {"second", [&] { laterRan = 1; }},
        {"third", [&] { laterRan = 1; }}};

    ExperimentRunner runner(quiet(1, /*retries=*/0, /*failFast=*/true));
    const CampaignReport report = runner.run(jobs);

    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::Failed);
    EXPECT_EQ(report.jobs[1].outcome, JobOutcome::Skipped);
    EXPECT_EQ(report.jobs[2].outcome, JobOutcome::Skipped);
    EXPECT_EQ(report.skipped(), 2u);
    EXPECT_EQ(laterRan, 0);
}

TEST(ExperimentRunner, CancelledTokenSkipsQueuedJobs)
{
    // The first job trips the shared token mid-campaign: with one
    // inline worker, every job queued behind it must be reported
    // Skipped without its body ever running.
    CancelToken token;
    int laterRan = 0;
    const std::vector<Job> jobs{
        {"first", [&] { token.cancel(); }},
        {"second", [&] { laterRan = 1; }},
        {"third", [&] { laterRan = 1; }}};

    RunnerOptions opt = quiet(1);
    opt.cancel = &token;
    ExperimentRunner runner(opt);
    const CampaignReport report = runner.run(jobs);

    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::Done);
    EXPECT_EQ(report.jobs[1].outcome, JobOutcome::Skipped);
    EXPECT_EQ(report.jobs[2].outcome, JobOutcome::Skipped);
    EXPECT_EQ(report.jobs[1].name, "second");
    EXPECT_EQ(report.skipped(), 2u);
    EXPECT_EQ(laterRan, 0);
}

TEST(ExperimentRunner, PreCancelledTokenSkipsEverything)
{
    CancelToken token;
    token.cancel();
    int ran = 0;
    const std::vector<Job> jobs{{"only", [&] { ran = 1; }}};
    RunnerOptions opt = quiet(4);
    opt.cancel = &token;
    const CampaignReport report = ExperimentRunner(opt).run(jobs);
    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::Skipped);
    EXPECT_EQ(report.skipped(), 1u);
    EXPECT_EQ(ran, 0);
}

TEST(ExperimentRunner, CampaignReportSerializes)
{
    const std::vector<Job> jobs{{"a", [] {}},
                                {"b", [] {
                                     throw std::runtime_error("nope");
                                 }}};
    ExperimentRunner runner(quiet(1, /*retries=*/0));
    const Json doc = runner.run(jobs).toJson();

    ASSERT_TRUE(doc.contains("jobs"));
    EXPECT_EQ(doc.at("jobs").size(), 2u);
    EXPECT_EQ(doc.at("jobs").at(0).at("name").asString(), "a");
    EXPECT_EQ(doc.at("jobs").at(0).at("outcome").asString(), "done");
    EXPECT_EQ(doc.at("jobs").at(1).at("outcome").asString(), "failed");
    EXPECT_EQ(doc.at("jobs").at(1).at("error").asString(), "nope");
    EXPECT_TRUE(doc.contains("threads"));
    EXPECT_TRUE(doc.contains("seconds"));
}

// ---------------------------------------------------------------
// Options validation
// ---------------------------------------------------------------

TEST(OptionsDeathTest, UnknownKeyIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<double>("voltage", 0.625, "v");
            parseArgs(opts, {"bogus=1"});
        },
        "unknown option 'bogus'");
}

TEST(OptionsDeathTest, MalformedNumberIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<double>("voltage", 0.625, "v");
            parseArgs(opts, {"voltage=fast"});
        },
        "voltage");
}

TEST(OptionsDeathTest, OutOfRangeValueIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<double>("voltage", 0.625, "v").range(0.5, 1.0);
            parseArgs(opts, {"voltage=0.3"});
        },
        "voltage");
}

TEST(OptionsDeathTest, ValueOutsideChoicesIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<std::uint64_t>("ratio", 256, "r")
                .choices({16, 32, 64, 128, 256});
            parseArgs(opts, {"ratio=100"});
        },
        "ratio");
}

TEST(OptionsDeathTest, BareTokenWithoutEqualsIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            parseArgs(opts, {"voltage"});
        },
        "key=value");
}

TEST(OptionsDeathTest, RedeclaringAnOptionIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<double>("voltage", 0.625, "v");
            opts.add<double>("voltage", 0.7, "again");
        },
        "voltage");
}

TEST(Options, ParsesTypedValuesAndTracksIsSet)
{
    Options opts("t", "test");
    const auto &voltage =
        opts.add<double>("voltage", 0.625, "v").range(0.5, 1.0);
    const auto &seed = opts.add<std::uint64_t>("seed", 42, "s");
    const auto &name = opts.add("workload", "xsbench", "w");
    const auto &fast = opts.add<bool>("fast", false, "f");
    parseArgs(opts, {"voltage=0.55", "fast=true"});

    EXPECT_DOUBLE_EQ(voltage.value(), 0.55);
    EXPECT_EQ(seed.value(), 42u);
    EXPECT_EQ(name.value(), "xsbench");
    EXPECT_TRUE(fast.value());
    EXPECT_TRUE(opts.has("voltage"));
    EXPECT_FALSE(opts.has("seed"));
    EXPECT_DOUBLE_EQ(opts.get<double>("voltage"), 0.55);
}

TEST(Options, FallsBackToEnvironmentVariables)
{
    ::setenv("KILLI_RUNNER_TEST_KNOB", "7", 1);
    Options opts("t", "test");
    const auto &knob =
        opts.add<std::uint64_t>("runner.test.knob", 1, "k");
    parseArgs(opts, {});
    EXPECT_EQ(knob.value(), 7u);
    EXPECT_TRUE(opts.has("runner.test.knob"));
    ::unsetenv("KILLI_RUNNER_TEST_KNOB");
}

TEST(Options, CommandLineBeatsEnvironment)
{
    ::setenv("KILLI_RUNNER_TEST_KNOB", "7", 1);
    Options opts("t", "test");
    const auto &knob =
        opts.add<std::uint64_t>("runner.test.knob", 1, "k");
    parseArgs(opts, {"runner.test.knob=9"});
    EXPECT_EQ(knob.value(), 9u);
    ::unsetenv("KILLI_RUNNER_TEST_KNOB");
}

TEST(Options, ToJsonRecordsEffectiveValuesInDeclarationOrder)
{
    Options opts("t", "test");
    opts.add<double>("voltage", 0.625, "v");
    opts.add<std::uint64_t>("seed", 42, "s");
    parseArgs(opts, {"voltage=0.6"});

    const Json doc = opts.toJson();
    ASSERT_EQ(doc.members().size(), 2u);
    EXPECT_EQ(doc.members()[0].first, "voltage");
    EXPECT_DOUBLE_EQ(doc.at("voltage").asDouble(), 0.6);
    EXPECT_EQ(doc.at("seed").asInt(), 42);
}

TEST(Options, HelpListsEveryDeclaredOption)
{
    Options opts("prog", "summary line");
    opts.add<double>("voltage", 0.625, "supply voltage")
        .range(0.5, 1.0);
    opts.add("workload", "xsbench", "workload name");
    std::ostringstream help;
    opts.printHelp(help);
    const std::string text = help.str();
    EXPECT_NE(text.find("prog"), std::string::npos);
    EXPECT_NE(text.find("summary line"), std::string::npos);
    EXPECT_NE(text.find("voltage"), std::string::npos);
    EXPECT_NE(text.find("supply voltage"), std::string::npos);
    EXPECT_NE(text.find("KILLI_"), std::string::npos);
}

// ---------------------------------------------------------------
// JSON round-trips
// ---------------------------------------------------------------

TEST(StatGroupJson, RoundTripsThroughTheParser)
{
    StatGroup stats;
    stats.counter("l2.hits", "hits") += 17;
    auto &lat = stats.distribution("l2.latency", "latency");
    lat.sample(3.0);
    lat.sample(9.0);
    stats.distribution("l2.unused", "never sampled");
    stats.formula("l2.ratio", [] { return 0.25; }, "ratio");

    std::ostringstream os;
    stats.dumpJson(os);

    Json parsed;
    std::string err;
    ASSERT_TRUE(Json::parse(os.str(), parsed, &err)) << err;
    EXPECT_EQ(parsed.at("counters").at("l2.hits").asInt(), 17);
    const Json &latency = parsed.at("distributions").at("l2.latency");
    EXPECT_EQ(latency.at("count").asInt(), 2);
    EXPECT_DOUBLE_EQ(latency.at("mean").asDouble(), 6.0);
    EXPECT_DOUBLE_EQ(latency.at("min").asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(latency.at("max").asDouble(), 9.0);
    // Empty distribution: min/max serialize as null, not 0.0.
    const Json &unused = parsed.at("distributions").at("l2.unused");
    EXPECT_EQ(unused.at("count").asInt(), 0);
    EXPECT_TRUE(unused.at("min").isNull());
    EXPECT_TRUE(unused.at("max").isNull());
    EXPECT_DOUBLE_EQ(
        parsed.at("formulas").at("l2.ratio").asDouble(), 0.25);
}

TEST(RunResultJson, RoundTripsEveryCounter)
{
    RunResult r;
    r.cycles = 1234567;
    r.instructions = 89012;
    r.l2ReadHits = 1;
    r.l2ReadMisses = 2;
    r.l2ErrorMisses = 3;
    r.l2WriteHits = 4;
    r.l2WriteMisses = 5;
    r.l2Evictions = 6;
    r.l2ProtInvalidations = 7;
    r.l2BypassFills = 8;
    r.sdc = 9;
    r.dramReads = 10;
    r.dramWrites = 11;

    const RunResult back = RunResult::fromJson(r.toJson());
    EXPECT_EQ(back.toJson(), r.toJson());
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.sdc, 9u);
    EXPECT_EQ(back.dramWrites, 11u);
}

// ---------------------------------------------------------------
// Evaluation sweep: parallel == serial, and the results file
// ---------------------------------------------------------------

namespace
{

SweepOptions
tinySweep(unsigned jobs)
{
    SweepOptions opt;
    opt.scale = 0.02;
    opt.warmupPasses = 0;
    opt.voltage = 0.625;
    opt.seed = 42;
    opt.jobs = jobs;
    opt.workloads = {"xsbench", "spmv"};
    opt.schemes = {"DECTED", "MS-ECC", "Killi 1:256"};
    return opt;
}

Json
sweepData(const SweepResult &res)
{
    // Results only — the campaign report's timings legitimately vary
    // between runs; the measured data must not.
    Json doc = Json::array();
    for (const auto &ws : res.workloads) {
        Json w = Json::object();
        w.set("workload", Json::string(ws.workload));
        w.set("baseline_ok", Json::boolean(ws.baselineOk));
        w.set("baseline", ws.baseline.toJson());
        Json schemes = Json::array();
        for (const auto &run : ws.schemes) {
            Json s = Json::object();
            s.set("scheme", Json::string(run.scheme));
            s.set("ok", Json::boolean(run.ok));
            s.set("result", run.result.toJson());
            schemes.push(std::move(s));
        }
        w.set("schemes", std::move(schemes));
        doc.push(std::move(w));
    }
    return doc;
}

} // namespace

TEST(EvaluationSweep, ParallelRunIsBitIdenticalToSerial)
{
    const SweepResult serial = runEvaluationSweep(tinySweep(1));
    const SweepResult parallel = runEvaluationSweep(tinySweep(4));

    ASSERT_EQ(serial.workloads.size(), 2u);
    ASSERT_EQ(serial.workloads[0].schemes.size(), 3u);
    EXPECT_TRUE(serial.campaign.allOk());
    EXPECT_TRUE(parallel.campaign.allOk());
    EXPECT_EQ(sweepData(serial), sweepData(parallel));
}

TEST(EvaluationSweep, ResultsFileIsWellFormedAndConsumable)
{
    SweepOptions opt = tinySweep(2);
    opt.workloads = {"spmv"};
    opt.schemes = {"Killi 1:256"};
    const SweepResult res = runEvaluationSweep(opt);

    const std::string path = ::testing::TempDir() +
        "/killi_runner_test_sweep.json";
    writeJsonFile(path, sweepToJson(opt, res));

    const Json doc = readJsonFile(path);
    ASSERT_TRUE(doc.contains("workloads"));
    ASSERT_EQ(doc.at("workloads").size(), 1u);
    const Json &ws = doc.at("workloads").at(0);
    EXPECT_EQ(ws.at("workload").asString(), "spmv");
    ASSERT_TRUE(ws.at("schemes").at(0).at("ok").asBool());

    // Consume the file the way a plotting script would: recover the
    // baseline-normalized execution time from raw RunResults.
    const RunResult base = RunResult::fromJson(ws.at("baseline"));
    const RunResult killi =
        RunResult::fromJson(ws.at("schemes").at(0).at("result"));
    ASSERT_GT(base.cycles, 0u);
    const double normTime =
        double(killi.cycles) / double(base.cycles);
    EXPECT_GT(normTime, 0.9);
    EXPECT_LT(normTime, 3.0);

    // And it matches the in-memory result exactly.
    EXPECT_EQ(killi.toJson(),
              res.workloads[0].schemes[0].result.toJson());
    std::remove(path.c_str());
}

TEST(EvaluationSweepDeathTest, UnknownSchemeNameIsFatal)
{
    EXPECT_DEATH(
        {
            SweepOptions opt = tinySweep(1);
            opt.schemes = {"NotAScheme"};
            runEvaluationSweep(opt);
        },
        "NotAScheme");
}

// ---------------------------------------------------------------
// GNU-style option spellings (--key=value, --key value, bare --flag)
// accepted alongside the original key=value tokens.

TEST(Options, DashedKeyEqualsValue)
{
    Options opts("t", "test");
    opts.add<std::uint64_t>("runs", 10, "cases");
    parseArgs(opts, {"--runs=42"});
    EXPECT_EQ(opts.get<std::uint64_t>("runs"), 42u);
}

TEST(Options, DashedKeyThenValueToken)
{
    Options opts("t", "test");
    opts.add<std::uint64_t>("runs", 10, "cases");
    opts.add<std::uint64_t>("jobs", 0, "threads");
    parseArgs(opts, {"--runs", "500", "--jobs", "4"});
    EXPECT_EQ(opts.get<std::uint64_t>("runs"), 500u);
    EXPECT_EQ(opts.get<std::uint64_t>("jobs"), 4u);
}

TEST(Options, MixedSpellingsInOneCommandLine)
{
    Options opts("t", "test");
    opts.add<std::uint64_t>("runs", 10, "cases");
    opts.add<double>("voltage", 0.625, "v");
    parseArgs(opts, {"runs=7", "--voltage", "0.55"});
    EXPECT_EQ(opts.get<std::uint64_t>("runs"), 7u);
    EXPECT_DOUBLE_EQ(opts.get<double>("voltage"), 0.55);
}

TEST(Options, BareBoolFlagSetsTrue)
{
    Options opts("t", "test");
    opts.add<bool>("shrink", false, "minimize failures");
    opts.add<std::uint64_t>("runs", 10, "cases");
    // Both at the end of argv and followed by another option.
    parseArgs(opts, {"--shrink", "--runs", "3"});
    EXPECT_TRUE(opts.get<bool>("shrink"));
    EXPECT_EQ(opts.get<std::uint64_t>("runs"), 3u);

    Options opts2("t", "test");
    opts2.add<bool>("shrink", false, "minimize failures");
    parseArgs(opts2, {"--shrink"});
    EXPECT_TRUE(opts2.get<bool>("shrink"));
}

TEST(Options, BoolFlagStillTakesExplicitValue)
{
    Options opts("t", "test");
    opts.add<bool>("shrink", true, "minimize failures");
    parseArgs(opts, {"--shrink", "false"});
    EXPECT_FALSE(opts.get<bool>("shrink"));
}

TEST(OptionsDeathTest, DashedNonBoolWithoutValueIsFatal)
{
    EXPECT_DEATH(
        {
            Options opts("t", "test");
            opts.add<std::uint64_t>("runs", 10, "cases");
            parseArgs(opts, {"--runs"});
        },
        "needs a value");
}
