/**
 * @file
 * ScenarioSpec / FaultModel contract tests: the scenario document
 * round-trips byte-identically, the default (iid) scenario rebuilds
 * the legacy FaultMap constructor's population bit-for-bit, the
 * correlated model classes produce the spatial shapes they advertise,
 * and the monotone-voltage guard fires exactly when a model declares
 * monotonicity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_map.hh"
#include "fault/fault_model.hh"
#include "fault/scenario_spec.hh"
#include "fault/voltage_model.hh"

namespace killi
{
namespace
{

Json
parsed(const std::string &text)
{
    Json doc;
    std::string err;
    EXPECT_TRUE(Json::parse(text, doc, &err)) << err;
    return doc;
}

ScenarioSpec
clusteredSpec()
{
    ScenarioSpec s;
    s.model = "clustered";
    s.seed = 7;
    s.voltage = 0.6;
    s.cluster.rowFrac = 0.05;
    s.cluster.clusterRate = 0.01;
    return s;
}

ScenarioSpec
burstSpec()
{
    ScenarioSpec s;
    s.model = "burst";
    s.seed = 9;
    s.voltage = 0.6;
    s.burst.burstRate = 0.2;
    return s;
}

ScenarioSpec
droopSpec()
{
    ScenarioSpec s;
    s.model = "droop";
    s.seed = 5;
    s.voltage = 0.65;
    s.droop.base = "clustered";
    s.droop.schedule = {0.65, 0.6, 0.575, 0.65};
    return s;
}

/** parse(serialize(spec)) must reproduce the canonical bytes. */
void
expectRoundTrip(const ScenarioSpec &spec)
{
    const std::string first = spec.toJson().toString();
    const ScenarioSpec reparsed =
        ScenarioSpec::fromJson(parsed(first));
    EXPECT_EQ(first, reparsed.toJson().toString())
        << "scenario class " << spec.model
        << " does not round-trip canonically";
}

TEST(ScenarioSpec, RoundTripsByteIdenticallyPerClass)
{
    expectRoundTrip(ScenarioSpec{}); // default iid
    expectRoundTrip(clusteredSpec());
    expectRoundTrip(burstSpec());
    expectRoundTrip(droopSpec());
}

TEST(ScenarioSpec, InlineJsonAndDefaultsParse)
{
    const ScenarioSpec s =
        ScenarioSpec::fromString("{\"model\": \"burst\"}");
    EXPECT_EQ(s.model, "burst");
    EXPECT_EQ(s.seed, 42u); // absent keys take their defaults
    EXPECT_DOUBLE_EQ(s.voltage, 0.625);
}

TEST(ScenarioSpec, StrictParseRejectsGarbage)
{
    ScenarioSpec out;
    std::string err;
    EXPECT_FALSE(ScenarioSpec::tryFromJson(
        parsed("{\"model\": \"quantum\"}"), out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(ScenarioSpec::tryFromJson(
        parsed("{\"mdoel\": \"iid\"}"), out, &err))
        << "unknown keys must be rejected, not ignored";
    EXPECT_FALSE(ScenarioSpec::tryFromJson(
        parsed("{\"format\": \"killi-scenario-v9\"}"), out,
        &err));
    EXPECT_FALSE(ScenarioSpec::tryFromJson(
        parsed("{\"voltage\": 7.0}"), out, &err));
}

/** The population two maps expose must match cell-for-cell. */
void
expectSamePopulation(const FaultMap &a, const FaultMap &b)
{
    ASSERT_EQ(a.numLines(), b.numLines());
    ASSERT_EQ(a.lineBits(), b.lineBits());
    for (std::size_t line = 0; line < a.numLines(); ++line) {
        const auto &fa = a.lineFaults(line);
        const auto &fb = b.lineFaults(line);
        ASSERT_EQ(fa.size(), fb.size()) << "line " << line;
        for (std::size_t i = 0; i < fa.size(); ++i) {
            EXPECT_EQ(fa[i].bit, fb[i].bit) << "line " << line;
            EXPECT_EQ(fa[i].stuckValue, fb[i].stuckValue)
                << "line " << line;
            EXPECT_FLOAT_EQ(fa[i].threshold, fb[i].threshold)
                << "line " << line;
        }
    }
}

TEST(FaultModel, DefaultScenarioMatchesLegacyConstructorBitwise)
{
    ScenarioSpec spec;
    spec.seed = 42;
    spec.voltage = 0.625;
    const std::unique_ptr<FaultModel> model =
        FaultModel::fromScenario(spec);
    const std::unique_ptr<FaultMap> viaModel =
        model->buildMap(2048, 720);

    const VoltageModel vm;
    FaultMap legacy(2048, 720, vm, 42);
    legacy.setVoltage(0.625);

    EXPECT_DOUBLE_EQ(viaModel->voltage(), legacy.voltage());
    expectSamePopulation(*viaModel, legacy);
}

TEST(FaultModel, SameScenarioSameDie)
{
    const ScenarioSpec spec = clusteredSpec();
    const auto m1 = FaultModel::fromScenario(spec);
    const auto m2 = FaultModel::fromScenario(
        ScenarioSpec::fromJson(spec.toJson()));
    const auto a = m1->buildMap(1024, 720);
    const auto b = m2->buildMap(1024, 720);
    expectSamePopulation(*a, *b);
}

/** Sum and sum-of-squares of per-line active fault counts. */
std::pair<double, double>
countMoments(const FaultMap &map, std::size_t *total = nullptr)
{
    double sum = 0, sumSq = 0;
    for (std::size_t line = 0; line < map.numLines(); ++line) {
        const double c = double(map.lineFaults(line).size());
        sum += c;
        sumSq += c * c;
    }
    if (total)
        *total = std::size_t(sum);
    return {sum, sumSq};
}

/** Variance-to-mean ratio of per-line fault counts: ~1 for a thin
 *  iid population, well above 1 when faults clump into weak rows and
 *  defect clusters. */
double
fanoFactor(const FaultMap &map)
{
    const auto [sum, sumSq] = countMoments(map);
    const double n = double(map.numLines());
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    return mean > 0 ? var / mean : 0.0;
}

TEST(FaultModel, ClusteredPopulationIsOverdispersed)
{
    constexpr std::size_t kLines = 8192;
    ScenarioSpec cl = clusteredSpec();
    cl.voltage = 0.6;
    ScenarioSpec iid;
    iid.seed = cl.seed;
    iid.voltage = cl.voltage;

    const auto clMap = FaultModel::fromScenario(cl)->buildMap(
        kLines, 720);
    const auto iidMap = FaultModel::fromScenario(iid)->buildMap(
        kLines, 720);

    std::size_t clTotal = 0;
    countMoments(*clMap, &clTotal);
    ASSERT_GT(clTotal, 100u)
        << "clustered population too thin to measure";

    const double clFano = fanoFactor(*clMap);
    const double iidFano = fanoFactor(*iidMap);
    // Weak rows put whole bursts of faults on a few lines: the
    // clustered model's line-count dispersion must clearly beat the
    // (approximately Poisson) iid model's.
    EXPECT_GT(clFano, 2.0 * iidFano + 1.0)
        << "clustered fano=" << clFano << " iid fano=" << iidFano;
}

/** Fraction of faults whose neighbouring bit is also faulty. */
double
adjacentFraction(const FaultMap &map)
{
    std::size_t faults = 0, adjacent = 0;
    for (std::size_t line = 0; line < map.numLines(); ++line) {
        const auto &cells = map.lineFaults(line);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            ++faults;
            const bool left =
                i > 0 && cells[i].bit == cells[i - 1].bit + 1;
            const bool right = i + 1 < cells.size() &&
                cells[i + 1].bit == cells[i].bit + 1;
            if (left || right)
                ++adjacent;
        }
    }
    return faults > 0 ? double(adjacent) / double(faults) : 0.0;
}

TEST(FaultModel, BurstPopulationIsAdjacencyHeavy)
{
    constexpr std::size_t kLines = 8192;
    ScenarioSpec bu = burstSpec();
    bu.voltage = 0.6;
    ScenarioSpec iid;
    iid.seed = bu.seed;
    iid.voltage = bu.voltage;

    const auto buMap = FaultModel::fromScenario(bu)->buildMap(
        kLines, 720);
    const auto iidMap = FaultModel::fromScenario(iid)->buildMap(
        kLines, 720);

    const double buAdj = adjacentFraction(*buMap);
    const double iidAdj = adjacentFraction(*iidMap);
    // Byte-aligned bursts make runs of adjacent failing cells the
    // norm; iid adjacency at these densities is a rare coincidence.
    EXPECT_GT(buAdj, 0.3) << "burst adjacency " << buAdj;
    EXPECT_GT(buAdj, 4.0 * iidAdj + 0.05)
        << "burst adj=" << buAdj << " iid adj=" << iidAdj;
}

TEST(FaultModel, MonotoneGuardRejectsVoltageRaise)
{
    ScenarioSpec spec;
    spec.voltage = 0.625;
    const auto model = FaultModel::fromScenario(spec);
    const auto map = model->buildMap(64, 720);
    map->setVoltage(0.6); // lowering is always fine
    EXPECT_DEATH(map->setVoltage(0.7), "");
}

TEST(FaultModel, DroopMapsMayRaiseVoltage)
{
    const ScenarioSpec spec = droopSpec();
    const auto model = FaultModel::fromScenario(spec);
    EXPECT_FALSE(model->monotoneVoltage());
    EXPECT_EQ(model->voltageSchedule(), spec.droop.schedule);

    const auto map = model->buildMap(64, 720);
    EXPECT_DOUBLE_EQ(map->voltage(), spec.droop.schedule.front());
    for (const double v : spec.droop.schedule)
        map->setVoltage(v); // includes the raise back to 0.65
    EXPECT_DOUBLE_EQ(map->voltage(), spec.droop.schedule.back());
}

TEST(FaultModel, LegacyDirectMapsStayUndeclared)
{
    const VoltageModel vm;
    FaultMap map(64, 720, vm, 3);
    map.setVoltage(0.6);
    map.setVoltage(0.7); // no declaration -> raising stays legal
    EXPECT_DOUBLE_EQ(map.voltage(), 0.7);
}

} // namespace
} // namespace killi
