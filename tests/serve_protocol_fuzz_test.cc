/**
 * @file
 * Adversarial tests for the kserved wire protocol: FrameDecoder
 * round-trips, byte-dribble reassembly, and a seeded fuzz loop that
 * mutates valid frames (truncation, bit flips, oversized length
 * prefixes, corrupted JSON) and requires the decoder to either
 * produce a frame or fail cleanly — never crash, never loop. The
 * final tests aim raw garbage at a live daemon socket and assert it
 * answers with an error frame, closes that connection, and keeps
 * serving others.
 */

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <random>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace killi;
using namespace killi::serve;

namespace
{

Json
pingFrame()
{
    Json doc = Json::object();
    doc.set("type", Json::string("ping"));
    return doc;
}

std::string
bigEndianLength(std::uint32_t n)
{
    std::string out(4, '\0');
    out[0] = char((n >> 24) & 0xff);
    out[1] = char((n >> 16) & 0xff);
    out[2] = char((n >> 8) & 0xff);
    out[3] = char(n & 0xff);
    return out;
}

} // namespace

TEST(FrameDecoder, RoundTripsASequenceOfFrames)
{
    std::string wire;
    for (int i = 0; i < 5; ++i) {
        Json doc = Json::object();
        doc.set("type", Json::string("ping"));
        doc.set("i", Json::number(std::int64_t(i)));
        wire += encodeFrame(doc);
    }
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    for (int i = 0; i < 5; ++i) {
        Json out;
        ASSERT_EQ(dec.next(out), FrameDecoder::Status::Frame);
        EXPECT_EQ(out.at("i").asInt(), i);
    }
    Json out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::NeedMore);
    EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(FrameDecoder, ReassemblesOneByteAtATime)
{
    const std::string wire = encodeFrame(pingFrame());
    FrameDecoder dec;
    Json out;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        dec.feed(wire.data() + i, 1);
        ASSERT_EQ(dec.next(out), FrameDecoder::Status::NeedMore)
            << "frame complete after only " << (i + 1) << " bytes";
    }
    dec.feed(wire.data() + wire.size() - 1, 1);
    ASSERT_EQ(dec.next(out), FrameDecoder::Status::Frame);
    EXPECT_EQ(out.at("type").asString(), "ping");
}

TEST(FrameDecoder, ReassemblesAcrossEverySplitOffset)
{
    // A TCP read can end at any byte: every offset of the length
    // prefix and payload — including the seam between two frames —
    // must reassemble to the same two documents. The second frame
    // is larger than the first so prefix and payload offsets of
    // both frames land on distinct split points.
    Json first = pingFrame();
    first.set("n", Json::number(std::int64_t(1)));
    Json second = pingFrame();
    second.set("n", Json::number(std::int64_t(2)));
    second.set("pad", Json::string(std::string(64, 'x')));
    const std::string wire =
        encodeFrame(first) + encodeFrame(second);

    for (std::size_t split = 0; split <= wire.size(); ++split) {
        FrameDecoder dec;
        dec.feed(wire.data(), split);
        std::vector<Json> got;
        Json out;
        while (dec.next(out) == FrameDecoder::Status::Frame)
            got.push_back(out);
        ASSERT_FALSE(dec.failed())
            << "split at " << split << ": " << dec.error();
        dec.feed(wire.data() + split, wire.size() - split);
        while (dec.next(out) == FrameDecoder::Status::Frame)
            got.push_back(out);
        ASSERT_FALSE(dec.failed())
            << "split at " << split << ": " << dec.error();
        ASSERT_EQ(got.size(), 2u) << "split at " << split;
        EXPECT_EQ(got[0].at("n").asInt(), 1) << "split at " << split;
        EXPECT_EQ(got[1].at("n").asInt(), 2) << "split at " << split;
        EXPECT_EQ(got[1].toString(0), second.toString(0))
            << "split at " << split;
        EXPECT_EQ(dec.pendingBytes(), 0u) << "split at " << split;
    }
}

TEST(FrameDecoder, PayloadMatchesEncodeFramePayloadSplice)
{
    // encodeFramePayload is the cache-hit fast path: wrapping the
    // stored text must decode to the same document as encodeFrame.
    const Json doc = pingFrame();
    const std::string direct = encodeFrame(doc);
    const std::string spliced = encodeFramePayload(doc.toString(0));
    EXPECT_EQ(direct, spliced);
}

TEST(FrameDecoder, RejectsOversizedLengthPrefix)
{
    FrameDecoder dec;
    const std::string prefix = bigEndianLength(kMaxFrameBytes + 1);
    dec.feed(prefix.data(), prefix.size());
    Json out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::Error);
    EXPECT_TRUE(dec.failed());
    // The stream is dead for good.
    const std::string wire = encodeFrame(pingFrame());
    dec.feed(wire.data(), wire.size());
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::Error);
}

TEST(FrameDecoder, RejectsMalformedJsonPayload)
{
    const std::string payload = "{\"type\":"; // truncated JSON
    const std::string wire =
        bigEndianLength(std::uint32_t(payload.size())) + payload;
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Json out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::Error);
}

TEST(FrameDecoder, RejectsNonObjectAndMissingTypePayloads)
{
    for (const std::string &payload :
         {std::string("[1,2,3]"), std::string("42"),
          std::string("{\"nota\":\"type\"}"),
          std::string("{\"type\":7}")}) {
        const std::string wire =
            bigEndianLength(std::uint32_t(payload.size())) + payload;
        FrameDecoder dec;
        dec.feed(wire.data(), wire.size());
        Json out;
        EXPECT_EQ(dec.next(out), FrameDecoder::Status::Error)
            << "payload accepted: " << payload;
    }
}

TEST(FrameDecoder, FuzzMutatedFramesNeverCrash)
{
    // Deterministic mutation fuzz: start from a valid multi-frame
    // wire image, then truncate / flip bits / splice garbage, and
    // pump the decoder to exhaustion. The only acceptable outcomes
    // are Frame, NeedMore, or a sticky Error.
    std::mt19937 rng(0x6b696c6cu); // "kill", seeded + reproducible
    const std::string base = [&] {
        std::string wire;
        Json doc = Json::object();
        doc.set("type", Json::string("submit"));
        Json options = Json::object();
        options.set("scale", Json::number(0.02));
        options.set("workloads", Json::string("spmv"));
        doc.set("options", std::move(options));
        wire += encodeFrame(doc);
        wire += encodeFrame(pingFrame());
        return wire;
    }();

    for (int iter = 0; iter < 2000; ++iter) {
        std::string wire = base;
        const int mutations = 1 + int(rng() % 4);
        for (int m = 0; m < mutations; ++m) {
            switch (rng() % 4) {
            case 0: // truncate
                wire.resize(rng() % (wire.size() + 1));
                break;
            case 1: // flip a bit
                if (!wire.empty())
                    wire[rng() % wire.size()] ^=
                        char(1u << (rng() % 8));
                break;
            case 2: // splice random bytes
                wire.insert(rng() % (wire.size() + 1), 1,
                            char(rng() % 256));
                break;
            case 3: // duplicate a chunk
                if (!wire.empty()) {
                    const std::size_t at = rng() % wire.size();
                    const std::size_t len =
                        1 + rng() % (wire.size() - at);
                    wire += wire.substr(at, len);
                }
                break;
            }
        }

        FrameDecoder dec;
        // Feed in randomly-sized slices to exercise reassembly.
        std::size_t off = 0;
        while (off < wire.size()) {
            const std::size_t n =
                std::min<std::size_t>(1 + rng() % 7,
                                      wire.size() - off);
            dec.feed(wire.data() + off, n);
            off += n;
        }
        Json out;
        int frames = 0;
        for (;;) {
            const FrameDecoder::Status st = dec.next(out);
            if (st == FrameDecoder::Status::Frame) {
                ASSERT_LE(++frames, 16) << "decoder looping";
                continue;
            }
            if (st == FrameDecoder::Status::Error) {
                EXPECT_TRUE(dec.failed());
            }
            break;
        }
    }
}

TEST(ServeProtocol, DaemonSurvivesRawGarbageConnections)
{
    ServerOptions so;
    so.port = 0;
    so.threads = 1;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    std::mt19937 rng(1337);
    for (int round = 0; round < 8; ++round) {
        // Client::send only ships valid frames, so write the hostile
        // bytes — an oversized length prefix followed by noise — on
        // a raw socket.
        std::string garbage =
            bigEndianLength(kMaxFrameBytes + 1 + 17 * unsigned(round));
        for (int i = 0; i < 64; ++i)
            garbage += char(rng() % 256);

        int raw = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(raw, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.boundPort());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        ASSERT_EQ(::connect(raw, (sockaddr *)&addr, sizeof(addr)), 0);
        ASSERT_EQ(::send(raw, garbage.data(), garbage.size(),
                         MSG_NOSIGNAL),
                  ssize_t(garbage.size()));
        // The daemon answers with an error frame, then closes.
        std::string reply;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(raw, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            reply.append(buf, std::size_t(n));
        }
        ::close(raw);
        FrameDecoder dec;
        dec.feed(reply.data(), reply.size());
        Json frame;
        ASSERT_EQ(dec.next(frame), FrameDecoder::Status::Frame)
            << "no error frame before close (round " << round << ")";
        EXPECT_EQ(frame.at("type").asString(), "error");
        EXPECT_EQ(frame.at("code").asString(), "protocol");

        // A fresh, well-behaved connection still gets service.
        Client healthy;
        ASSERT_TRUE(healthy.connectTcp(server.boundPort(), &err))
            << err;
        ASSERT_TRUE(healthy.send(pingFrame()));
        Json pong;
        ASSERT_TRUE(healthy.recv(pong, &err)) << err;
        EXPECT_EQ(pong.at("type").asString(), "pong");
    }

    // The protocol errors were counted.
    Client statsClient;
    ASSERT_TRUE(statsClient.connectTcp(server.boundPort(), &err))
        << err;
    Json req = Json::object();
    req.set("type", Json::string("stats"));
    ASSERT_TRUE(statsClient.send(req));
    Json reply;
    ASSERT_TRUE(statsClient.recv(reply));
    EXPECT_GE(reply.at("stats")
                  .at("outcomes")
                  .at("protocol_errors")
                  .asInt(),
              8);
    server.stop();
}
