/**
 * @file
 * Tests for the serving subsystem (src/serve): JobScheduler
 * semantics under deterministic blocking jobs, the content-addressed
 * ResultCache, and loopback integration against a real in-process
 * Server — including the PR's acceptance criteria: daemon results
 * bit-identical to a direct in-process sweep (cold and cached), a
 * 200-request concurrent barrage with a bounded queue, and clean
 * drain semantics over both TCP and Unix sockets.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <mutex>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sweep.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "fault/fault_model.hh"
#include "metrics/dashboard.hh"
#include "replay/session.hh"
#include "serve/cache.hh"
#include "serve/client/client.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"
#include "serve/warm_store.hh"

using namespace killi;
using namespace killi::serve;

namespace
{

/** A terminal notification captured by a test. */
struct Finish
{
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    std::string result;
    std::string error;
};

/** Thread-safe collector for JobFinish callbacks. */
class FinishLog
{
  public:
    JobFinish
    sink()
    {
        return [this](std::uint64_t id, JobState st,
                      const std::string &res, const std::string &err) {
            std::lock_guard<std::mutex> lock(mtx);
            entries.push_back({id, st, res, err});
            cv.notify_all();
        };
    }

    /** Block until @p n terminal notifications have arrived. */
    bool
    waitForCount(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mtx);
        return cv.wait_for(lock, std::chrono::seconds(30),
                           [&] { return entries.size() >= n; });
    }

    std::vector<Finish>
    all() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return entries;
    }

    Finish
    forId(std::uint64_t id) const
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (const Finish &f : entries)
            if (f.id == id)
                return f;
        ADD_FAILURE() << "no finish recorded for job " << id;
        return {};
    }

  private:
    mutable std::mutex mtx;
    std::condition_variable cv;
    std::vector<Finish> entries;
};

/** A latch the test opens to release blocked job bodies. */
struct Gate
{
    std::promise<void> promise;
    std::shared_future<void> future{promise.get_future().share()};

    void
    open()
    {
        promise.set_value();
    }
};

/** A job body that blocks until the test opens the gate. */
JobWork
blockOn(const std::shared_ptr<Gate> &gate)
{
    return [gate](const CancelToken &) {
        gate->future.wait();
        return std::string("blocked-done");
    };
}

/**
 * Poll @p pred until it holds or the deadline passes. Every former
 * raw `while (!pred) yield()` spin in this file goes through here so
 * a daemon that never reaches the awaited state is a diagnosed
 * failure (@p what names it) instead of a test that hangs until the
 * harness kills it.
 */
::testing::AssertionResult
waitUntil(const std::function<bool()> &pred, const char *what,
          std::chrono::milliseconds deadline =
              std::chrono::seconds(30))
{
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (pred())
            return ::testing::AssertionSuccess();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ::testing::AssertionFailure()
           << "timed out after " << deadline.count()
           << "ms waiting for " << what;
}

/** The fast smoke sweep the CI golden pins (scale 0.02, seed 42). */
Json
smokeSubmit(bool stream)
{
    Json options = Json::object();
    options.set("scale", Json::number(0.02));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(std::uint64_t{42}));
    options.set("workloads", Json::string("xsbench,spmv"));
    options.set("schemes", Json::string("DECTED,Killi 1:256"));
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    req.set("options", std::move(options));
    req.set("stream", Json::boolean(stream));
    return req;
}

} // namespace

// ---------------------------------------------------------------
// JobScheduler
// ---------------------------------------------------------------

TEST(JobScheduler, RunsJobAndDeliversResultText)
{
    JobScheduler sched(2, 16);
    FinishLog log;
    ASSERT_TRUE(sched.submit(
        1, 0, [](const CancelToken &) { return std::string("r1"); },
        log.sink(), nullptr));
    // Wait for completion before draining: drain() cancels jobs
    // still sitting in the ready queue.
    ASSERT_TRUE(log.waitForCount(1));
    sched.drain();
    const Finish f = log.forId(1);
    EXPECT_EQ(f.state, JobState::Done);
    EXPECT_EQ(f.result, "r1");
    EXPECT_TRUE(sched.idle());
}

TEST(JobScheduler, FailedJobCarriesExceptionText)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    ASSERT_TRUE(sched.submit(
        7, 0,
        [](const CancelToken &) -> std::string {
            throw std::runtime_error("boom");
        },
        log.sink(), nullptr));
    ASSERT_TRUE(log.waitForCount(1));
    sched.drain();
    const Finish f = log.forId(7);
    EXPECT_EQ(f.state, JobState::Failed);
    EXPECT_EQ(f.error, "boom");
}

TEST(JobScheduler, HigherPriorityRunsFirst)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    auto gate = std::make_shared<Gate>();
    std::vector<std::uint64_t> order;
    std::mutex orderMtx;
    const auto record = [&](std::uint64_t id) {
        return [&, id](const CancelToken &) {
            std::lock_guard<std::mutex> lock(orderMtx);
            order.push_back(id);
            return std::string();
        };
    };
    // Occupy the single worker, then queue low before high.
    ASSERT_TRUE(sched.submit(1, 0, blockOn(gate), log.sink(), nullptr));
    ASSERT_TRUE(sched.submit(2, -5, record(2), log.sink(), nullptr));
    ASSERT_TRUE(sched.submit(3, 5, record(3), log.sink(), nullptr));
    ASSERT_TRUE(sched.submit(4, 0, record(4), log.sink(), nullptr));
    gate->open();
    ASSERT_TRUE(log.waitForCount(4));
    sched.drain();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 3u); // priority 5
    EXPECT_EQ(order[1], 4u); // priority 0
    EXPECT_EQ(order[2], 2u); // priority -5
}

TEST(JobScheduler, CancelQueuedJobNeverRuns)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    auto gate = std::make_shared<Gate>();
    std::atomic<bool> ran{false};
    ASSERT_TRUE(sched.submit(1, 0, blockOn(gate), log.sink(), nullptr));
    ASSERT_TRUE(waitUntil([&] { return sched.stats().running > 0; },
                          "job 1 to start running"));
    ASSERT_TRUE(sched.submit(
        2, 0,
        [&](const CancelToken &) {
            ran = true;
            return std::string();
        },
        log.sink(), nullptr));
    EXPECT_TRUE(sched.cancel(2));
    // The terminal notification for a queued cancel fires before
    // cancel() returns.
    const Finish f = log.forId(2);
    EXPECT_EQ(f.state, JobState::Cancelled);
    EXPECT_EQ(f.error, "cancelled");
    gate->open();
    sched.drain();
    EXPECT_FALSE(ran.load());
    EXPECT_FALSE(sched.cancel(2)); // already finished
}

TEST(JobScheduler, CancelRunningTripsToken)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    std::atomic<bool> started{false};
    ASSERT_TRUE(sched.submit(
        1, 0,
        [&](const CancelToken &cancel) {
            started = true;
            // Bounded: if the token never trips, the job returns a
            // sentinel and the state assertion below diagnoses it,
            // instead of wedging the worker (and drain()) forever.
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(30);
            while (!cancel.cancelled() &&
                   std::chrono::steady_clock::now() < deadline)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            return std::string(cancel.cancelled()
                                   ? "partial"
                                   : "never-cancelled");
        },
        log.sink(), nullptr));
    ASSERT_TRUE(waitUntil([&] { return started.load(); },
                          "job 1 to enter its body"));
    EXPECT_TRUE(sched.cancel(1));
    sched.drain();
    const Finish f = log.forId(1);
    EXPECT_EQ(f.state, JobState::Cancelled);
    EXPECT_EQ(f.result, ""); // partial result is discarded
}

TEST(JobScheduler, BoundedQueueRejectsWithQueueFull)
{
    JobScheduler sched(1, 1);
    FinishLog log;
    auto gate = std::make_shared<Gate>();
    ASSERT_TRUE(sched.submit(1, 0, blockOn(gate), log.sink(), nullptr));
    // Worker may briefly hold job 1 in the ready queue; wait until
    // it is actually running so the bound applies to job 2 alone.
    ASSERT_TRUE(waitUntil([&] { return sched.stats().running > 0; },
                          "job 1 to start running"));
    ASSERT_TRUE(sched.submit(2, 0, blockOn(gate), log.sink(), nullptr));
    std::string code;
    EXPECT_FALSE(sched.submit(3, 0, blockOn(gate), log.sink(), &code));
    EXPECT_EQ(code, "queue_full");
    EXPECT_EQ(sched.stats().rejected, 1u);
    gate->open();
    ASSERT_TRUE(log.waitForCount(2));
    sched.drain();
}

TEST(JobScheduler, DrainCancelsQueuedAndRejectsNewSubmits)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    auto gate = std::make_shared<Gate>();
    ASSERT_TRUE(sched.submit(1, 0, blockOn(gate), log.sink(), nullptr));
    ASSERT_TRUE(waitUntil([&] { return sched.stats().running > 0; },
                          "job 1 to start running"));
    ASSERT_TRUE(sched.submit(2, 0, blockOn(gate), log.sink(), nullptr));
    sched.beginDrain();
    EXPECT_TRUE(sched.draining());
    // Queued job 2 was cancelled with the drain code...
    const Finish f = log.forId(2);
    EXPECT_EQ(f.state, JobState::Cancelled);
    EXPECT_EQ(f.error, "draining");
    // ...new submits bounce...
    std::string code;
    EXPECT_FALSE(sched.submit(3, 0, blockOn(gate), log.sink(), &code));
    EXPECT_EQ(code, "draining");
    // ...and the in-flight job still finishes normally.
    gate->open();
    sched.drain();
    EXPECT_EQ(log.forId(1).state, JobState::Done);
}

TEST(JobScheduler, StateTracksLifecycle)
{
    JobScheduler sched(1, 16);
    FinishLog log;
    auto gate = std::make_shared<Gate>();
    ASSERT_TRUE(sched.submit(1, 0, blockOn(gate), log.sink(), nullptr));
    bool found = false;
    sched.state(1, &found);
    EXPECT_TRUE(found);
    sched.state(99, &found);
    EXPECT_FALSE(found);
    gate->open();
    ASSERT_TRUE(log.waitForCount(1));
    sched.drain();
    EXPECT_EQ(sched.state(1, &found), JobState::Done);
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------

TEST(ResultCache, HitReturnsStoredBytesVerbatim)
{
    ResultCache cache(8);
    const std::string key = "{\"experiment\":\"sweep\",\"seed\":1}";
    const std::string text = "{\"workloads\":[1,2,3]}";
    std::string out, hash;
    EXPECT_FALSE(cache.lookup(key, out, &hash));
    EXPECT_EQ(hash, sha256Hex(key));
    EXPECT_EQ(cache.insert(key, text), hash);
    ASSERT_TRUE(cache.lookup(key, out));
    EXPECT_EQ(out, text);
    const ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(ResultCache, LruEvictsOldestBeyondCapacity)
{
    ResultCache cache(2);
    cache.insert("a", "ra");
    cache.insert("b", "rb");
    std::string out;
    ASSERT_TRUE(cache.lookup("a", out)); // refresh a; b is now LRU
    cache.insert("c", "rc");             // evicts b
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("c", out));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

// ---------------------------------------------------------------
// Server loopback integration
// ---------------------------------------------------------------

namespace
{

/** Boot a TCP server on an ephemeral port and connect a client. */
struct Loopback
{
    Server server;
    Client client;

    explicit Loopback(unsigned threads = 2, std::size_t maxQueue = 8)
        : server([&] {
              ServerOptions so;
              so.port = 0;
              so.threads = threads;
              so.maxQueue = maxQueue;
              return so;
          }())
    {
        std::string err;
        if (!server.start(&err))
            ADD_FAILURE() << "server.start: " << err;
        if (!client.connectTcp(server.boundPort(), &err))
            ADD_FAILURE() << "connect: " << err;
    }
};

} // namespace

TEST(ServeIntegration, ResultMatchesDirectRunAndCacheHitIsIdentical)
{
    // The same point computed directly, in-process.
    SweepOptions direct;
    direct.scale = 0.02;
    direct.warmupPasses = 0;
    direct.seed = 42;
    direct.workloads = {"xsbench", "spmv"};
    direct.schemes = {"DECTED", "Killi 1:256"};
    direct.jobs = 1;
    const SweepResult res = runEvaluationSweep(direct);
    const std::string directWorkloads =
        sweepToJson(direct, res).at("workloads").toString(0);

    Loopback lo;
    ScopedLogCapture quiet; // swallow the daemon's progress lines

    Json cold;
    std::string err;
    ASSERT_TRUE(lo.client.submit(smokeSubmit(false), cold, {}, &err))
        << err;
    ASSERT_EQ(cold.at("type").asString(), "result");
    ASSERT_EQ(cold.at("outcome").asString(), "done");
    EXPECT_FALSE(cold.at("cached").asBool());

    // (a) The daemon's deterministic subset is bit-identical to the
    // direct run (same serializer, equal trees, equal bytes).
    EXPECT_EQ(cold.at("result").at("workloads").toString(0),
              directWorkloads);

    // (b) The second submit is answered from the cache, and its
    // result document is the stored bytes of the first reply.
    Json cached;
    ASSERT_TRUE(
        lo.client.submit(smokeSubmit(false), cached, {}, &err))
        << err;
    ASSERT_EQ(cached.at("outcome").asString(), "done");
    EXPECT_TRUE(cached.at("cached").asBool());
    EXPECT_EQ(cached.at("key").asString(), cold.at("key").asString());
    EXPECT_EQ(cached.at("result").toString(0),
              cold.at("result").toString(0));

    lo.server.stop();
}

TEST(ServeIntegration, SubmittedPrecedesResultAndCarriesKey)
{
    Loopback lo;
    ScopedLogCapture quiet;
    ASSERT_TRUE(lo.client.send(smokeSubmit(false)));
    Json frame;
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "submitted");
    const std::string key = frame.at("key").asString();
    EXPECT_EQ(key.size(), 64u); // sha256 hex
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "result");
    EXPECT_EQ(frame.at("key").asString(), key);
    lo.server.stop();
}

TEST(ServeIntegration, CancelRunningJobYieldsCancelledOutcome)
{
    Loopback lo(1);
    ScopedLogCapture quiet;

    // A multi-point sweep with progress streaming: after the first
    // progress frame the job is mid-campaign, and the cancel token
    // is polled between the remaining points.
    Json req = smokeSubmit(true);
    Json options = Json::object();
    options.set("scale", Json::number(0.05));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(std::uint64_t{42}));
    options.set("workloads", Json::string("xsbench,spmv"));
    options.set("schemes", Json::string("DECTED,Killi 1:256"));
    options.set("stats_interval", Json::number(std::uint64_t{2000}));
    req.set("options", std::move(options));

    // Every receive below is deadline-bounded: a daemon that stops
    // answering mid-cancel fails the test with the frame it was
    // waiting for, instead of hanging on a blocking recv().
    constexpr int kRecvMs = 30000;
    std::string rerr;
    ASSERT_TRUE(lo.client.send(req));
    Json frame;
    ASSERT_TRUE(lo.client.recvWithin(frame, kRecvMs, &rerr))
        << "waiting for submitted: " << rerr;
    ASSERT_EQ(frame.at("type").asString(), "submitted");
    const std::uint64_t id =
        std::uint64_t(frame.at("id").asDouble());

    ASSERT_TRUE(lo.client.recvWithin(frame, kRecvMs, &rerr))
        << "waiting for first progress: " << rerr;
    ASSERT_EQ(frame.at("type").asString(), "progress");

    Json cancel = Json::object();
    cancel.set("type", Json::string("cancel"));
    cancel.set("id", Json::number(id));
    ASSERT_TRUE(lo.client.send(cancel));

    bool sawCancelReply = false;
    // Progress frames already in flight may precede the cancel
    // reply; the terminal result must arrive within the deadline
    // regardless, and the frame budget catches a daemon that streams
    // forever instead of honouring the cancel.
    for (int frames = 0;; ++frames) {
        ASSERT_LT(frames, 10000)
            << "no terminal result after " << frames << " frames";
        ASSERT_TRUE(lo.client.recvWithin(frame, kRecvMs, &rerr))
            << "waiting for cancel_reply/result: " << rerr;
        const std::string &type = frame.at("type").asString();
        if (type == "cancel_reply") {
            EXPECT_TRUE(frame.at("cancelled").asBool());
            sawCancelReply = true;
        } else if (type == "result") {
            break;
        }
    }
    EXPECT_TRUE(sawCancelReply);
    EXPECT_EQ(frame.at("outcome").asString(), "cancelled");
    lo.server.stop();
}

TEST(ServeIntegration, BadRequestGetsErrorAndServerKeepsServing)
{
    Loopback lo;
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    Json options = Json::object();
    options.set("workloads", Json::string("not_a_workload"));
    req.set("options", std::move(options));
    ASSERT_TRUE(lo.client.send(req));
    Json frame;
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "bad_request");

    Json ping = Json::object();
    ping.set("type", Json::string("ping"));
    ASSERT_TRUE(lo.client.send(ping));
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "pong");
    lo.server.stop();
}

TEST(ServeIntegration, DrainRequestAcksFlushesAndCloses)
{
    ServerOptions so;
    so.socketPath = "serve_test_drain.sock";
    so.threads = 1;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    Client client;
    ASSERT_TRUE(client.connectUnix(so.socketPath, &err)) << err;
    Json drain = Json::object();
    drain.set("type", Json::string("drain"));
    ASSERT_TRUE(client.send(drain));
    Json frame;
    ASSERT_TRUE(client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "draining");
    // With nothing in flight the daemon flushes and closes.
    EXPECT_FALSE(client.recv(frame));
    server.waitDone();
    EXPECT_NE(::access(so.socketPath.c_str(), F_OK), 0)
        << "socket not unlinked after drain";
}

TEST(ServeIntegration, FetchAddressesTheCacheByContentHash)
{
    Loopback lo;
    ScopedLogCapture quiet;

    // Compute once; the submitted frame carries the content hash a
    // fleet peer would hold.
    ASSERT_TRUE(lo.client.send(smokeSubmit(false)));
    Json frame;
    ASSERT_TRUE(lo.client.recv(frame));
    ASSERT_EQ(frame.at("type").asString(), "submitted");
    const std::string key = frame.at("key").asString();
    ASSERT_TRUE(lo.client.recv(frame));
    ASSERT_EQ(frame.at("type").asString(), "result");
    const std::string resultText = frame.at("result").toString(0);

    // A fetch of that hash returns the stored bytes verbatim.
    Json fetch = Json::object();
    fetch.set("type", Json::string("fetch"));
    fetch.set("key", Json::string(key));
    ASSERT_TRUE(lo.client.send(fetch));
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "fetch_reply");
    EXPECT_TRUE(frame.at("found").asBool());
    EXPECT_EQ(frame.at("key").asString(), key);
    EXPECT_EQ(frame.at("result").toString(0), resultText);

    // An unknown (but well-formed) hash is a clean not-found, not
    // an error: the peer falls back to recomputing.
    fetch.set("key", Json::string(std::string(64, '0')));
    ASSERT_TRUE(lo.client.send(fetch));
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "fetch_reply");
    EXPECT_FALSE(frame.at("found").asBool());

    // A malformed key is a bad request; the connection survives.
    fetch.set("key", Json::string("not-a-hash"));
    ASSERT_TRUE(lo.client.send(fetch));
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "bad_request");
    Json ping = Json::object();
    ping.set("type", Json::string("ping"));
    ASSERT_TRUE(lo.client.send(ping));
    ASSERT_TRUE(lo.client.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "pong");
    lo.server.stop();
}

TEST(ServeIntegration, MultiReactorServesClientsOnEveryReactor)
{
    ServerOptions so;
    so.port = 0;
    so.threads = 2;
    so.ioThreads = 3;
    so.maxQueue = 16;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ScopedLogCapture quiet;

    // Seed the cache once, then more clients than reactors submit
    // the same job: every connection — wherever accept landed it —
    // must get the identical cached bytes.
    Client seed;
    ASSERT_TRUE(seed.connectTcp(server.boundPort(), &err)) << err;
    Json cold;
    ASSERT_TRUE(seed.submit(smokeSubmit(false), cold, {}, &err))
        << err;
    const std::string want = cold.at("result").toString(0);

    constexpr unsigned kClients = 8;
    std::vector<std::thread> threads;
    std::atomic<unsigned> identical{0};
    for (unsigned i = 0; i < kClients; ++i)
        threads.emplace_back([&] {
            Client c;
            std::string cerr;
            Json reply;
            if (c.connectTcp(server.boundPort(), &cerr) &&
                c.submit(smokeSubmit(false), reply, {}, &cerr) &&
                reply.at("result").toString(0) == want)
                identical.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(identical.load(), kClients);

    // The reactor pool is visible on the metrics plane.
    const std::string prom = server.metrics().prometheusText();
    EXPECT_NE(prom.find("kserved_io_reactors"), std::string::npos);
    EXPECT_NE(prom.find("kserved_reactor_connections_total"),
              std::string::npos);
    server.stop();
}

TEST(ServeIntegration, MaxConnsAnswersExcessAcceptsWithOverloaded)
{
    ServerOptions so;
    so.port = 0;
    so.threads = 1;
    so.maxConns = 1;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    Client first;
    ASSERT_TRUE(first.connectTcp(server.boundPort(), &err)) << err;
    Json ping = Json::object();
    ping.set("type", Json::string("ping"));
    Json frame;
    ASSERT_TRUE(first.send(ping));
    ASSERT_TRUE(first.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "pong");

    // The second connection is accepted only to be told why it is
    // being turned away, then closed.
    Client second;
    ASSERT_TRUE(second.connectTcp(server.boundPort(), &err)) << err;
    ASSERT_TRUE(second.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "overloaded");
    EXPECT_FALSE(second.recv(frame)); // closed after the flush

    // The admitted connection keeps serving.
    ASSERT_TRUE(first.send(ping));
    ASSERT_TRUE(first.recv(frame));
    EXPECT_EQ(frame.at("type").asString(), "pong");
    server.stop();
}

TEST(ServeIntegration, Barrage200RequestsBoundedQueueCleanDrain)
{
    constexpr unsigned kClients = 8;
    constexpr unsigned kPerClient = 25;
    constexpr std::size_t kMaxQueue = 8;

    ServerOptions so;
    so.port = 0;
    so.threads = 2;
    so.maxQueue = kMaxQueue;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ScopedLogCapture quiet;

    // Every request is the same tiny point, pipelined without
    // waiting: the daemon must bound its queue (rejecting the
    // overflow) and answer everything else, increasingly from the
    // cache once the first computation lands.
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    Json options = Json::object();
    options.set("scale", Json::number(0.002));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(std::uint64_t{42}));
    options.set("workloads", Json::string("spmv"));
    options.set("schemes", Json::string("DECTED"));
    req.set("options", std::move(options));
    req.set("stream", Json::boolean(false));

    std::atomic<unsigned> done{0}, rejected{0}, other{0};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([&] {
            Client client;
            std::string cerr;
            ASSERT_TRUE(client.connectTcp(server.boundPort(), &cerr))
                << cerr;
            for (unsigned i = 0; i < kPerClient; ++i)
                ASSERT_TRUE(client.send(req, &cerr)) << cerr;
            // Bounded drain: every pipelined submit owes exactly one
            // terminal frame; a daemon that drops one turns into a
            // diagnosed timeout here, not a hung client thread that
            // the harness eventually kills with no context.
            unsigned terminals = 0;
            while (terminals < kPerClient) {
                Json frame;
                ASSERT_TRUE(client.recvWithin(frame, 60000, &cerr))
                    << "after " << terminals << "/" << kPerClient
                    << " terminals: " << cerr;
                if (frame.at("type").asString() != "result")
                    continue;
                ++terminals;
                const std::string &outcome =
                    frame.at("outcome").asString();
                if (outcome == "done")
                    ++done;
                else if (outcome == "rejected")
                    ++rejected;
                else
                    ++other;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(done + rejected + other, kClients * kPerClient);
    EXPECT_EQ(other.load(), 0u);
    EXPECT_GE(done.load(), 1u);

    // The queue stayed bounded throughout.
    Client statsClient;
    ASSERT_TRUE(statsClient.connectTcp(server.boundPort(), &err))
        << err;
    Json statsReq = Json::object();
    statsReq.set("type", Json::string("stats"));
    ASSERT_TRUE(statsClient.send(statsReq));
    Json reply;
    ASSERT_TRUE(statsClient.recv(reply));
    const Json &stats = reply.at("stats");
    EXPECT_LE(stats.at("scheduler").at("peak_queued").asInt(),
              std::int64_t(kMaxQueue));
    const Json &outcomes = stats.at("outcomes");
    EXPECT_EQ(std::uint64_t(outcomes.at("done").asDouble()) +
                  std::uint64_t(
                      outcomes.at("cache_hits").asDouble()),
              std::uint64_t(done.load()));
    EXPECT_EQ(std::uint64_t(outcomes.at("rejected").asDouble()),
              std::uint64_t(rejected.load()));
    // Every submit consulted the cache (hits depend on timing: a
    // pipelined submit only hits once the first computation lands).
    EXPECT_GE(stats.at("cache").at("misses").asInt(), 1);

    server.stop(); // clean drain with clients gone
}

TEST(ServeIntegration, StatsExposeLatencyQuantiles)
{
    Loopback lo;
    ScopedLogCapture quiet;
    Json terminal;
    std::string err;
    ASSERT_TRUE(
        lo.client.submit(smokeSubmit(false), terminal, {}, &err))
        << err;
    Json statsReq = Json::object();
    statsReq.set("type", Json::string("stats"));
    ASSERT_TRUE(lo.client.send(statsReq));
    Json reply;
    ASSERT_TRUE(lo.client.recv(reply));
    const Json &lat = reply.at("stats").at("latency");
    EXPECT_EQ(lat.at("count").asInt(), 1);
    EXPECT_GE(lat.at("p99_s").asDouble(), lat.at("p50_s").asDouble());
    lo.server.stop();
}

// ---------------------------------------------------------------
// Metrics plane
// ---------------------------------------------------------------

namespace
{

/** Blocking GET http://127.0.0.1:port/path; returns the body. */
std::string
httpGet(std::uint16_t port, const std::string &path,
        std::string *statusLine = nullptr)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\n\r\n";
    (void)!::write(fd, req.data(), req.size());
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        response.append(buf, std::size_t(n));
    ::close(fd);
    const auto headerEnd = response.find("\r\n\r\n");
    if (headerEnd == std::string::npos)
        return "";
    if (statusLine)
        *statusLine = response.substr(0, response.find("\r\n"));
    return response.substr(headerEnd + 4);
}

/** Fetch the daemon's `metrics` frame reply. */
Json
metricsFrame(Client &client)
{
    Json req = Json::object();
    req.set("type", Json::string("metrics"));
    EXPECT_TRUE(client.send(req));
    Json reply;
    EXPECT_TRUE(client.recvWithin(reply, 10000));
    EXPECT_EQ(reply.at("type").asString(), "metrics_reply");
    return reply;
}

/**
 * Drop exposition lines the act of scraping itself perturbs —
 * wall-clock uptime, and the wire counters the `metrics` frame and
 * the HTTP request bump (frames, outbox bytes, http requests) — so
 * two scrapes of an otherwise quiescent daemon compare
 * byte-identically on everything that matters.
 */
std::string
stripScrapePerturbed(const std::string &text)
{
    static const char *kVolatile[] = {
        "kserved_uptime_seconds",      "kserved_frames_received_total",
        "kserved_frames_sent_total",   "kserved_outbox_bytes_total",
        "kserved_http_requests_total", "kserved_reactor_wakeups_total",
    };
    std::string out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        bool skip = false;
        for (const char *name : kVolatile)
            skip = skip || line.find(name) != std::string::npos;
        if (skip)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace

TEST(ServeMetrics, FrameAndHttpScrapeExposeIdenticalFamilies)
{
    ServerOptions so;
    so.port = 0;
    so.threads = 1;
    so.metricsHttp = true;
    so.metricsPort = 0;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.metricsBoundPort(), 0);
    Client client;
    ASSERT_TRUE(client.connectTcp(server.boundPort(), &err)) << err;
    ScopedLogCapture quiet;

    Json terminal;
    ASSERT_TRUE(client.submit(smokeSubmit(false), terminal, {}, &err))
        << err;
    ASSERT_EQ(terminal.at("outcome").asString(), "done");

    // The terminal frame can reach us a hair before the worker
    // finishes its scheduler bookkeeping; wait for true quiescence
    // so the two scrapes see identical gauge values.
    ASSERT_TRUE(waitUntil(
        [&] {
            Json req = Json::object();
            req.set("type", Json::string("stats"));
            Json reply;
            return client.send(req) &&
                   client.recvWithin(reply, 10000) &&
                   reply.at("stats")
                           .at("scheduler")
                           .at("running")
                           .asInt() == 0;
        },
        "scheduler to go idle"));

    const Json reply = metricsFrame(client);
    const std::string fromFrame = reply.at("text").asString();
    std::string status;
    const std::string fromHttp =
        httpGet(server.metricsBoundPort(), "/metrics", &status);
    EXPECT_NE(status.find("200"), std::string::npos) << status;

    // The daemon is quiescent between the two scrapes: modulo the
    // wall-clock uptime gauge and the wire counters the scrapes
    // themselves bump, the expositions are byte-identical.
    EXPECT_EQ(stripScrapePerturbed(fromFrame),
              stripScrapePerturbed(fromHttp));

    // The structured JSON covers the same families as the text.
    const Json &families = reply.at("metrics").at("families");
    ASSERT_GT(families.size(), 0u);
    for (std::size_t i = 0; i < families.size(); ++i) {
        const std::string &name =
            families.at(i).at("name").asString();
        EXPECT_NE(fromFrame.find("# TYPE " + name + " "),
                  std::string::npos)
            << name;
    }

    // Unknown paths 404, non-GET 405.
    httpGet(server.metricsBoundPort(), "/nope", &status);
    EXPECT_NE(status.find("404"), std::string::npos) << status;

    server.stop();
}

TEST(ServeMetrics, SpanStagesSumToEndToEndLatency)
{
    Loopback lo;
    ScopedLogCapture quiet;
    Json terminal;
    std::string err;
    ASSERT_TRUE(
        lo.client.submit(smokeSubmit(false), terminal, {}, &err))
        << err;
    ASSERT_EQ(terminal.at("outcome").asString(), "done");
    ASSERT_TRUE(terminal.contains("spans"));
    const Json &spans = terminal.at("spans");
    const double total = spans.at("total_s").asDouble();
    ASSERT_GT(total, 0.0);
    double sum = 0.0;
    for (const char *stage : {"decode_s", "queue_s", "setup_s",
                              "run_s", "serialize_s", "reply_s"})
        sum += spans.at(stage).asDouble();
    // Acceptance criterion: the six stages tile the end-to-end
    // latency (within 5%; by construction it is exact modulo fp).
    EXPECT_NEAR(sum, total, 0.05 * total);
    // The run stage dominates a cold sweep.
    EXPECT_GT(spans.at("run_s").asDouble(), 0.5 * total);
    lo.server.stop();
}

TEST(ServeMetrics, CacheHitCountsHitAndSkipsRunStage)
{
    Loopback lo;
    ScopedLogCapture quiet;
    Json cold, hit;
    std::string err;
    ASSERT_TRUE(lo.client.submit(smokeSubmit(false), cold, {}, &err))
        << err;
    ASSERT_TRUE(lo.client.submit(smokeSubmit(false), hit, {}, &err))
        << err;
    ASSERT_TRUE(hit.at("cached").asBool());

    // The cached reply still carries spans (decode + reply only; no
    // run stage ever happened).
    ASSERT_TRUE(hit.contains("spans"));
    EXPECT_EQ(hit.at("spans").at("run_s").asDouble(), 0.0);
    EXPECT_GT(hit.at("spans").at("total_s").asDouble(), 0.0);

    const Json metricsDoc =
        metricsFrame(lo.client).at("metrics");
    const Json snap = metrics::ktopSnapshot(metricsDoc);
    EXPECT_EQ(snap.at("cache").at("hits").asInt(), 1);
    EXPECT_EQ(snap.at("cache").at("misses").asInt(), 1);
    // Only the cold submit was admitted and ran.
    EXPECT_EQ(snap.at("scheduler").at("submitted").asInt(), 1);
    EXPECT_EQ(snap.at("jobs").at("done").asInt(), 1);
    EXPECT_EQ(snap.at("stages").at("run").at("count").asInt(), 1);
    // Both submits observed decode; the hit observed 0 s end-to-end
    // (the historical convention), so latency count is 2.
    EXPECT_EQ(snap.at("stages").at("decode").at("count").asInt(), 2);
    EXPECT_EQ(snap.at("latency").at("count").asInt(), 2);
    lo.server.stop();
}

TEST(ServeMetrics, StatsReplyKeepsBackwardCompatibleMembers)
{
    Loopback lo;
    ScopedLogCapture quiet;
    Json terminal;
    std::string err;
    ASSERT_TRUE(
        lo.client.submit(smokeSubmit(false), terminal, {}, &err))
        << err;
    Json req = Json::object();
    req.set("type", Json::string("stats"));
    ASSERT_TRUE(lo.client.send(req));
    Json reply;
    ASSERT_TRUE(lo.client.recvWithin(reply, 10000));
    const Json &stats = reply.at("stats");
    // The pre-kmetrics member surface, now sourced from the
    // registry: scripts depending on these keys keep working
    // (warm_store is the one additive member).
    for (const char *key :
         {"build", "draining", "scheduler", "cache", "warm_store",
          "latency", "outcomes"})
        EXPECT_TRUE(stats.contains(key)) << key;
    const Json &lat = stats.at("latency");
    for (const char *key : {"count", "mean_s", "p50_s", "p99_s"})
        EXPECT_TRUE(lat.contains(key)) << key;
    const Json &out = stats.at("outcomes");
    for (const char *key :
         {"cache_hits", "done", "failed", "cancelled", "rejected",
          "protocol_errors", "connections"})
        EXPECT_TRUE(out.contains(key)) << key;
    EXPECT_EQ(out.at("done").asInt(), 1);
    lo.server.stop();
}

TEST(ServeMetrics, StatsLatencyQuantilesNullBeforeFirstJob)
{
    // Regression: a fresh daemon has an empty latency histogram;
    // its quantiles used to leak NaN into the stats_reply. The keys
    // must stay present (clients key on them) but carry an explicit
    // null until the first job finishes.
    Loopback lo;
    ScopedLogCapture quiet;
    Json req = Json::object();
    req.set("type", Json::string("stats"));
    ASSERT_TRUE(lo.client.send(req));
    Json reply;
    ASSERT_TRUE(lo.client.recvWithin(reply, 10000));
    const Json &lat = reply.at("stats").at("latency");
    EXPECT_EQ(lat.at("count").asInt(), 0);
    for (const char *key : {"mean_s", "p50_s", "p99_s"}) {
        ASSERT_TRUE(lat.contains(key)) << key;
        EXPECT_TRUE(lat.at(key).isNull()) << key;
    }
    lo.server.stop();
}

// ---------------------------------------------------------------
// Warm-state store
// ---------------------------------------------------------------

namespace
{

/** A smoke submit with an overridable workload subset and seed, so
 *  tests can force distinct result-cache keys that still share (or
 *  not) a die. */
Json
warmSubmit(const std::string &workloads, std::uint64_t seed)
{
    Json options = Json::object();
    options.set("scale", Json::number(0.02));
    options.set("warmup", Json::number(std::uint64_t{0}));
    options.set("seed", Json::number(seed));
    options.set("workloads", Json::string(workloads));
    options.set("schemes", Json::string("DECTED"));
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    req.set("options", std::move(options));
    req.set("stream", Json::boolean(false));
    return req;
}

} // namespace

TEST(WarmStore, SingleFlightSynthesizesOnceAcrossConcurrentCallers)
{
    WarmStore store(64 << 20);
    std::atomic<int> syntheses{0};
    Gate gate;
    const auto synth = [&] {
        ++syntheses;
        gate.future.wait();
        return FaultPopulation{{FaultCell{7, 0.5f, true,
                                          FaultKind::Writeability}}};
    };
    const std::string key = "warm-test-key";
    std::shared_ptr<const FaultPopulation> a, b;
    std::thread first([&] { a = store.faultPopulation(key, synth); });
    // The second caller must block on the first's in-flight
    // synthesis, not run its own.
    ASSERT_TRUE(waitUntil([&] { return syntheses.load() == 1; },
                          "first synthesis to start"));
    std::thread second([&] { b = store.faultPopulation(key, synth); });
    gate.open();
    first.join();
    second.join();
    EXPECT_EQ(syntheses.load(), 1);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a.get(), b.get()); // the one stored population, shared
    const WarmStore::Stats s = store.stats();
    EXPECT_EQ(s.misses, 1u); // misses == syntheses, exactly
    EXPECT_EQ(s.hits, 1u);   // the waiter counts a hit
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);
}

TEST(WarmStore, ByteBoundEvictsLruAndClearZeroesTheGauges)
{
    // 100 cells per population (reserved exactly, so the accounted
    // size is deterministic); bound the store to two payloads so the
    // third insert must evict the least recently used entry.
    const auto bigPopulation = [] {
        FaultPopulation pop(1);
        pop[0].reserve(100);
        for (std::uint16_t bit = 0; bit < 100; ++bit)
            pop[0].push_back(
                FaultCell{bit, 0.5f, false, FaultKind::Writeability});
        return pop;
    };
    const std::size_t payloadBytes = sizeof(FaultPopulation) +
                                     sizeof(std::vector<FaultCell>) +
                                     100 * sizeof(FaultCell);
    WarmStore store(2 * payloadBytes);
    store.faultPopulation("a", bigPopulation);
    store.faultPopulation("b", bigPopulation);
    // Touch "a" so "b" is the LRU victim.
    store.faultPopulation("a", bigPopulation);
    store.faultPopulation("c", bigPopulation);
    WarmStore::Stats s = store.stats();
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.evictions, 1u);
    // "b" was evicted; "a" survived the touch.
    store.faultPopulation("a", bigPopulation);
    store.faultPopulation("b", bigPopulation);
    s = store.stats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.hits, 2u);

    const std::uint64_t inserted = s.insertions;
    const std::uint64_t evictedByBound = s.evictions;
    const std::size_t resident = s.entries;
    store.clear();
    s = store.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_EQ(s.insertions, inserted);
    // Cleared entries count as evictions on top of the bound's.
    EXPECT_EQ(s.evictions, evictedByBound + resident);
}

TEST(WarmStore, FaultMapKeySeparatesScenarioGeometryAndSeed)
{
    ScenarioSpec spec;
    const std::string base = WarmStore::faultMapKey(spec, 1024, 720);
    EXPECT_EQ(base, WarmStore::faultMapKey(spec, 1024, 720));
    EXPECT_NE(base, WarmStore::faultMapKey(spec, 2048, 720));
    EXPECT_NE(base, WarmStore::faultMapKey(spec, 1024, 523));
    ScenarioSpec reseeded = spec;
    reseeded.seed = 43;
    EXPECT_NE(base, WarmStore::faultMapKey(reseeded, 1024, 720));
    ScenarioSpec clustered = spec;
    clustered.model = "clustered";
    EXPECT_NE(base, WarmStore::faultMapKey(clustered, 1024, 720));
}

TEST(ServeIntegration, WarmStoreSharesOneDieAcrossDistinctJobs)
{
    // Two jobs that differ only in their workload subset miss the
    // result cache (different canonical keys) but describe the same
    // die — the population must be synthesized exactly once and
    // adopted by every other sweep point of either job.
    Loopback lo;
    ScopedLogCapture quiet;
    Json first, second;
    std::string err;
    ASSERT_TRUE(
        lo.client.submit(warmSubmit("xsbench", 42), first, {}, &err))
        << err;
    ASSERT_EQ(first.at("outcome").asString(), "done");
    EXPECT_FALSE(first.at("cached").asBool());
    ASSERT_TRUE(
        lo.client.submit(warmSubmit("spmv", 42), second, {}, &err))
        << err;
    ASSERT_EQ(second.at("outcome").asString(), "done");
    EXPECT_FALSE(second.at("cached").asBool());

    Json req = Json::object();
    req.set("type", Json::string("stats"));
    ASSERT_TRUE(lo.client.send(req));
    Json reply;
    ASSERT_TRUE(lo.client.recvWithin(reply, 10000));
    const Json &warm = reply.at("stats").at("warm_store");
    // Four sweep points ran (baseline + DECTED, twice); one
    // synthesis, three warm adoptions.
    EXPECT_EQ(warm.at("misses").asInt(), 1);
    EXPECT_EQ(warm.at("hits").asInt(), 3);
    EXPECT_EQ(warm.at("insertions").asInt(), 1);
    EXPECT_EQ(warm.at("entries").asInt(), 1);
    EXPECT_GT(warm.at("bytes").asInt(), 0);
    lo.server.stop();
}

TEST(ServeIntegration, WarmBackedSweepMatchesColdRecordingAndReplays)
{
    // The bit-identity contract, end to end through krr: a cold
    // recorded run, a warm-store-backed run of the same options, and
    // a replay of the recording must all agree bit-for-bit.
    ScopedLogCapture quiet;
    SweepOptions opt;
    opt.scale = 0.02;
    opt.warmupPasses = 0;
    opt.workloads = {"xsbench"};
    opt.schemes = {"DECTED"};
    opt.jobs = 1;

    const replay::SweepSession cold = replay::recordSweep(opt);
    const std::string coldWorkloads =
        sweepToJson(opt, cold.result).at("workloads").toString(0);

    WarmStore store(64 << 20);
    SweepOptions wopt = opt;
    wopt.warmFaultSource = [&store, &wopt](const FaultModel &model,
                                           std::size_t numLines,
                                           std::size_t lineBits) {
        return store.faultPopulation(
            WarmStore::faultMapKey(wopt.scenario, numLines,
                                   lineBits),
            [&model, numLines, lineBits] {
                return model.buildMap(numLines, lineBits)
                    ->population();
            });
    };
    const SweepResult warmRes = runEvaluationSweep(wopt);
    EXPECT_EQ(
        sweepToJson(opt, warmRes).at("workloads").toString(0),
        coldWorkloads);
    // Both points (baseline + DECTED) consulted the store; one
    // synthesis.
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, 1u);

    // The cold recording replays bit-identically — and the replay
    // path samples cold by construction (replaySweep never merges a
    // warm source), so the recording's RNG draws all verify.
    const replay::SweepSession rep = replay::replaySweep(cold.recording);
    EXPECT_TRUE(rep.verified)
        << rep.divergence.toJson().toString(2);
    EXPECT_EQ(sweepToJson(rep.opt, rep.result)
                  .at("workloads")
                  .toString(0),
              coldWorkloads);
}

TEST(ServeIntegration, DrainClearsCacheAndWarmStateBytes)
{
    // Regression: drain-time teardown racing LRU eviction used to
    // leave the kserved_cache_bytes gauge non-zero. Force eviction
    // pressure (capacity 1) and assert both stores' gauges read 0
    // after a full drain.
    ServerOptions so;
    so.port = 0;
    so.threads = 1;
    so.cacheEntries = 1;
    Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connectTcp(server.boundPort(), &err)) << err;
    ScopedLogCapture quiet;

    Json first, second;
    ASSERT_TRUE(
        client.submit(warmSubmit("xsbench", 42), first, {}, &err))
        << err;
    ASSERT_EQ(first.at("outcome").asString(), "done");
    // A different seed: a different cache key AND a different die,
    // so both stores hold real state and the cache must evict.
    ASSERT_TRUE(
        client.submit(warmSubmit("xsbench", 7), second, {}, &err))
        << err;
    ASSERT_EQ(second.at("outcome").asString(), "done");

    Json before = server.statsJson();
    EXPECT_EQ(before.at("cache").at("insertions").asInt(), 2);
    EXPECT_EQ(before.at("cache").at("evictions").asInt(), 1);
    EXPECT_EQ(before.at("cache").at("entries").asInt(), 1);
    EXPECT_GT(before.at("cache").at("bytes").asInt(), 0);
    EXPECT_EQ(before.at("warm_store").at("entries").asInt(), 2);
    EXPECT_GT(before.at("warm_store").at("bytes").asInt(), 0);

    server.stop();

    Json after = server.statsJson();
    EXPECT_EQ(after.at("cache").at("entries").asInt(), 0);
    EXPECT_EQ(after.at("cache").at("bytes").asInt(), 0);
    // The cleared entry counts as an eviction: 1 by capacity + 1 by
    // the drain-time clear.
    EXPECT_EQ(after.at("cache").at("evictions").asInt(), 2);
    EXPECT_EQ(after.at("warm_store").at("entries").asInt(), 0);
    EXPECT_EQ(after.at("warm_store").at("bytes").asInt(), 0);
}
