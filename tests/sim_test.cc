/**
 * @file
 * Tests for the simulation kernel: event ordering and determinism,
 * DRAM latency/occupancy behaviour, and the golden-memory oracle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/dram.hh"
#include "sim/event_queue.hh"
#include "sim/golden.hh"

using namespace killi;

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueueTest, TiesBreakByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, 0);
    eq.schedule(5, [&] { order.push_back(2); }, -1); // runs first
    eq.schedule(5, [&] { order.push_back(3); }, 0);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueueTest, PopOrderIsTotalOverWhenPrioritySeq)
{
    // The determinism contract (DESIGN.md): pops are strictly
    // increasing in (when, priority, seq), regardless of heap
    // internals or insertion order. Insert a deterministic shuffle
    // of (tick, priority) pairs and check the exact total order.
    EventQueue eq;
    struct Popped
    {
        Tick when;
        int priority;
        std::uint64_t seq;
    };
    std::vector<Popped> pops;
    std::uint64_t seq = 0;
    // A fixed LCG shuffles insertion without platform randomness.
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 64; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const Tick when = Tick(10 + (lcg >> 33) % 4);  // 4 tick bins
        const int priority = int((lcg >> 13) % 3) - 1; // -1, 0, 1
        const std::uint64_t mySeq = seq++;
        eq.schedule(when, [&pops, &eq, when, priority, mySeq] {
            EXPECT_EQ(eq.curTick(), when);
            pops.push_back({when, priority, mySeq});
        }, priority);
    }
    eq.run();
    ASSERT_EQ(pops.size(), 64u);
    for (std::size_t i = 1; i < pops.size(); ++i) {
        const Popped &a = pops[i - 1];
        const Popped &b = pops[i];
        const bool increasing =
            a.when != b.when
                ? a.when < b.when
                : a.priority != b.priority ? a.priority < b.priority
                                           : a.seq < b.seq;
        EXPECT_TRUE(increasing)
            << "pop " << i << ": (" << a.when << "," << a.priority
            << "," << a.seq << ") then (" << b.when << ","
            << b.priority << "," << b.seq << ")";
    }
}

TEST(EventQueueTest, SameTickScheduleDuringPopRunsAfterPeers)
{
    // An event scheduled *during* a same-tick pop gets a larger seq
    // than every already-queued peer, so it runs after them — the
    // property replay recordings depend on for stable pop logs.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(1);
        eq.schedule(5, [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbacksMayScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 5)
            eq.scheduleIn(2, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 8u);
}

TEST(EventQueueTest, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "");
}

TEST(DramTest, LatencyApplied)
{
    DramParams p;
    p.latency = 200;
    p.occupancyPerAccess = 4;
    DramModel dram(p);
    EXPECT_EQ(dram.access(0, false, 100), 300u);
}

TEST(DramTest, ChannelOccupancySerializes)
{
    DramParams p;
    p.channels = 1;
    p.latency = 100;
    p.occupancyPerAccess = 4;
    DramModel dram(p);
    const Tick t1 = dram.access(0, false, 0);
    const Tick t2 = dram.access(64, false, 0);
    const Tick t3 = dram.access(128, false, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 104u); // queued behind the first burst
    EXPECT_EQ(t3, 108u);
}

TEST(DramTest, ChannelsInterleaveByLine)
{
    DramParams p;
    p.channels = 2;
    p.latency = 100;
    p.occupancyPerAccess = 4;
    DramModel dram(p);
    const Tick a = dram.access(0, false, 0);   // channel 0
    const Tick b = dram.access(64, false, 0);  // channel 1
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 100u); // no queuing across channels
}

TEST(DramTest, CountsReadsAndWrites)
{
    DramModel dram(DramParams{});
    dram.access(0, false, 0);
    dram.access(0, true, 0);
    dram.access(64, true, 0);
    EXPECT_EQ(dram.reads(), 1u);
    EXPECT_EQ(dram.writes(), 2u);
}

TEST(GoldenMemoryTest, DeterministicContent)
{
    GoldenMemory mem;
    const BitVec a = mem.data(0x1000, 0);
    const BitVec b = mem.data(0x1000, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 512u);
}

TEST(GoldenMemoryTest, VersionsChangeContent)
{
    GoldenMemory mem;
    const BitVec v0 = mem.data(0x40, 0);
    EXPECT_EQ(mem.version(0x40), 0u);
    EXPECT_EQ(mem.write(0x40), 1u);
    const BitVec v1 = mem.data(0x40);
    EXPECT_NE(v0, v1);
    EXPECT_EQ(mem.data(0x40, 0), v0); // old versions reproducible
}

TEST(GoldenMemoryTest, DistinctLinesDiffer)
{
    GoldenMemory mem;
    EXPECT_NE(mem.data(0, 0), mem.data(64, 0));
}
