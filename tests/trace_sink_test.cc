/**
 * @file
 * Tests for the ktrace layer: category masks (compile-time grammar
 * and runtime filtering), ring wraparound accounting, JSONL / Chrome
 * trace_event serialization validated through the strict JSON
 * parser, StatTimeseries semantics, EventQueue periodic sampling,
 * and trace determinism across repeated runs.
 */

#include <bit>
#include <cmath>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "check/scenario.hh"
#include "common/log.hh"
#include "sim/event_queue.hh"
#include "trace/timeseries.hh"
#include "trace/trace.hh"

using namespace killi;

namespace
{

/** Record @p n events with increasing ticks into @p sink. */
void
recordN(TraceSink &sink, std::uint64_t n,
        TraceCat cat = TraceCat::Sim)
{
    for (std::uint64_t i = 0; i < n; ++i)
        sink.record(Tick(i), cat, "ev", {{"i", i}});
}

} // namespace

// ---- category mask grammar -----------------------------------------

TEST(TraceMask, CompileTimeGrammar)
{
    static_assert(traceMaskFromList("all") == kAllTraceCats);
    static_assert(traceMaskFromList("*") == kAllTraceCats);
    static_assert(traceMaskFromList("") == 0);
    static_assert(traceMaskFromList("none") == 0);
    static_assert(traceMaskFromList("dfh") ==
                  std::uint32_t(TraceCat::Dfh));
    static_assert(traceMaskFromList("dfh,ecc,l2") ==
                  (TraceCat::Dfh | TraceCat::Ecc |
                   std::uint32_t(TraceCat::L2)));
    static_assert(traceMaskFromList("bogus") == kBadTraceMask);
    static_assert(traceMaskFromList("dfh,bogus") == kBadTraceMask);
    // Stray commas are harmless.
    static_assert(traceMaskFromList(",dfh,,ecc,") ==
                  (TraceCat::Dfh | TraceCat::Ecc));
}

TEST(TraceMask, ParseReportsUnknownNames)
{
    std::uint32_t mask = 0;
    std::string err;
    EXPECT_TRUE(parseTraceCats("dfh,error", mask, &err));
    EXPECT_EQ(mask, TraceCat::Dfh | TraceCat::Error);

    EXPECT_FALSE(parseTraceCats("dfh,nope", mask, &err));
    EXPECT_NE(err.find("nope"), std::string::npos)
        << "error should name the bad token: " << err;
    // The message lists the known categories for discoverability.
    EXPECT_NE(err.find("dfh"), std::string::npos) << err;
}

TEST(TraceMask, EveryCategoryRoundTripsThroughItsName)
{
    for (unsigned bit = 0; bit < 8; ++bit) {
        const TraceCat cat = TraceCat(1u << bit);
        std::uint32_t mask = 0;
        ASSERT_TRUE(parseTraceCats(traceCatName(cat), mask));
        EXPECT_EQ(mask, std::uint32_t(cat))
            << "category " << traceCatName(cat);
    }
}

// ---- runtime filtering ---------------------------------------------

TEST(TraceSink, RuntimeMaskFiltersCategories)
{
    TraceSink sink;
    sink.setMask(std::uint32_t(TraceCat::Dfh));
    Tick t = 0;
    KTRACE(&sink, ++t, TraceCat::Dfh, "kept", {"x", 1});
    KTRACE(&sink, ++t, TraceCat::Ecc, "filtered", {"x", 2});
    KTRACE(&sink, ++t, TraceCat::L2, "filtered", {"x", 3});

    const auto events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "kept");
    EXPECT_EQ(events[0].cat, TraceCat::Dfh);
    EXPECT_EQ(sink.recorded(), 1u);
}

TEST(TraceSink, NullSinkIsSafe)
{
    TraceSink *sink = nullptr;
    // Must not dereference; the macro guards the null itself.
    KTRACE(sink, 1, TraceCat::Sim, "nothing", {"x", 1});
    SUCCEED();
}

// ---- ring wraparound -----------------------------------------------

TEST(TraceSink, RingWraparoundKeepsNewestAndCountsDropped)
{
    TraceSink sink(8);
    recordN(sink, 20);
    EXPECT_EQ(sink.recorded(), 20u);
    EXPECT_EQ(sink.dropped(), 12u);
    EXPECT_EQ(sink.retained(), 8u);

    const auto events = sink.events();
    ASSERT_EQ(events.size(), 8u);
    // The survivors are the newest 8, still in tick order.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].tick, Tick(12 + i));
}

TEST(TraceSink, ClearDropsEventsButKeepsRecording)
{
    TraceSink sink(8);
    recordN(sink, 5);
    const auto before = sink.events();
    ASSERT_EQ(before.size(), 5u);
    const std::uint64_t maxSeqBefore = before.back().seq;

    sink.clear();
    EXPECT_EQ(sink.retained(), 0u);
    recordN(sink, 3);
    EXPECT_EQ(sink.retained(), 3u);

    // Sequence numbers stay monotonic across clear(): the (tick, seq)
    // record order remains unique over the whole sink lifetime.
    for (const TraceEvent &ev : sink.events())
        EXPECT_GT(ev.seq, maxSeqBefore);
}

// ---- serialization -------------------------------------------------

TEST(TraceSink, JsonlIsOneStrictJsonObjectPerLine)
{
    TraceSink sink;
    sink.record(1, TraceCat::Dfh, "dfh.transition",
                {{"line", 7}, {"from", "b01"}, {"to", "b10"},
                 {"frac", 0.5}, {"ok", true}});
    sink.record(2, TraceCat::Ecc, "ecc.install", {{"line", 9}});

    std::ostringstream os;
    sink.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        Json doc;
        std::string err;
        ASSERT_TRUE(Json::parse(line, doc, &err))
            << err << " in: " << line;
        EXPECT_TRUE(doc.contains("t"));
        EXPECT_TRUE(doc.contains("cat"));
        EXPECT_TRUE(doc.contains("name"));
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

TEST(TraceSink, ChromeTraceRoundTripsThroughStrictParser)
{
    TraceSink sink;
    sink.record(10, TraceCat::L2, "l2.read_hit", {{"line", 3}});
    sink.record(11, TraceCat::Error, "error.detect",
                {{"line", 3}, {"dfh", "b01"}});

    std::ostringstream os;
    sink.writeChromeTrace(os);
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(os.str(), doc, &err)) << err;

    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    const Json &first = events.at(0);
    // Fields the trace_event spec requires for instant events.
    EXPECT_EQ(first.at("ph").asString(), "i");
    EXPECT_EQ(first.at("s").asString(), "t");
    EXPECT_EQ(first.at("ts").asInt(), 10);
    EXPECT_EQ(first.at("name").asString(), "l2.read_hit");
    EXPECT_EQ(first.at("cat").asString(), "l2");
    EXPECT_EQ(first.at("args").at("line").asInt(), 3);
    // Bookkeeping lands in otherData.
    EXPECT_EQ(doc.at("otherData").at("recorded").asInt(), 2);
}

TEST(TraceSink, ArgTypesSerializeFaithfully)
{
    TraceSink sink;
    sink.record(1, TraceCat::Sim, "types",
                {{"u", std::uint64_t{1} << 40}, {"i", -5},
                 {"f", 2.5}, {"b", false}, {"s", "txt"}});
    const Json doc = sink.toJson();
    const Json &args = doc.at(0).at("args");
    EXPECT_EQ(args.at("u").asInt(), std::int64_t{1} << 40);
    EXPECT_EQ(args.at("i").asInt(), -5);
    EXPECT_DOUBLE_EQ(args.at("f").asDouble(), 2.5);
    EXPECT_FALSE(args.at("b").asBool());
    EXPECT_EQ(args.at("s").asString(), "txt");
}

// ---- multi-thread registration -------------------------------------

TEST(TraceSink, ThreadsGetDistinctTidsAndEventsMerge)
{
    TraceSink sink;
    auto work = [&sink](Tick base) {
        for (int i = 0; i < 10; ++i)
            sink.record(base + Tick(i), TraceCat::Sim, "t", {});
    };
    std::thread a(work, Tick(0));
    std::thread b(work, Tick(100));
    a.join();
    b.join();

    const auto events = sink.events();
    ASSERT_EQ(events.size(), 20u);
    // Merged snapshot is tick-ordered across both rings.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tick, events[i].tick);
    EXPECT_NE(events.front().tid, events.back().tid);
}

// ---- determinism ---------------------------------------------------

TEST(TraceDeterminism, IdenticalScenarioYieldsIdenticalTrace)
{
    // The property the sweep relies on at any --jobs: a point's
    // trace is a function of its inputs only, so re-running the same
    // seed gives a byte-identical file.
    const check::Scenario sc = check::Scenario::generate(1234);
    std::string first;
    for (int round = 0; round < 2; ++round) {
        TraceSink sink;
        check::runScenario(sc, 8, &sink);
        std::ostringstream os;
        sink.writeChromeTrace(os);
        if (round == 0) {
            first = os.str();
            EXPECT_GT(sink.retained(), 0u)
                << "scenario produced no events";
        } else {
            EXPECT_EQ(first, os.str());
        }
    }
}

// ---- StatTimeseries ------------------------------------------------

TEST(StatTimeseries, SamplesColumnsInRegistrationOrder)
{
    StatTimeseries ts(100);
    double x = 1.0;
    ts.addSource("x", [&x] { return x; });
    ts.addSource("x2", [&x] { return x * x; });

    ts.sample(100);
    x = 3.0;
    ts.sample(200);

    EXPECT_EQ(ts.samples(), 2u);
    EXPECT_DOUBLE_EQ(ts.lastValue("x"), 3.0);
    EXPECT_DOUBLE_EQ(ts.lastValue("x2"), 9.0);

    const Json doc = ts.toJson();
    EXPECT_EQ(doc.at("interval").asInt(), 100);
    EXPECT_EQ(doc.at("columns").at(0).asString(), "tick");
    EXPECT_EQ(doc.at("columns").at(1).asString(), "x");
    EXPECT_EQ(doc.at("columns").at(2).asString(), "x2");
    EXPECT_EQ(doc.at("samples").at(1).at(0).asInt(), 200);
    EXPECT_DOUBLE_EQ(doc.at("samples").at(0).at(2).asDouble(), 1.0);
}

TEST(StatTimeseries, SameTickOverwritesInsteadOfDuplicating)
{
    StatTimeseries ts(10);
    double v = 1.0;
    ts.addSource("v", [&v] { return v; });
    ts.sample(50);
    v = 2.0;
    ts.sample(50); // the explicit final sample may coincide
    EXPECT_EQ(ts.samples(), 1u);
    EXPECT_DOUBLE_EQ(ts.lastValue("v"), 2.0);
}

TEST(StatTimeseries, LastValueOfUnknownColumnIsNaN)
{
    StatTimeseries ts;
    EXPECT_TRUE(std::isnan(ts.lastValue("missing")));
    ts.addSource("v", [] { return 1.0; });
    EXPECT_TRUE(std::isnan(ts.lastValue("v"))); // never sampled
}

TEST(StatTimeseriesDeath, AddSourceAfterSamplingPanics)
{
    StatTimeseries ts;
    ts.addSource("v", [] { return 1.0; });
    ts.sample(1);
    EXPECT_DEATH(ts.addSource("late", [] { return 0.0; }),
                 "sampling");
}

TEST(StatTimeseriesDeath, DuplicateColumnPanics)
{
    StatTimeseries ts;
    ts.addSource("v", [] { return 1.0; });
    EXPECT_DEATH(ts.addSource("v", [] { return 2.0; }), "v");
}

// ---- EventQueue periodic hook --------------------------------------

TEST(EventQueuePeriodic, FiresEveryIntervalWhileEventsRemain)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.setPeriodic(10, [&] { fired.push_back(eq.curTick()); });
    eq.schedule(35, [] {});
    EXPECT_TRUE(eq.run());
    // Fires at 10, 20, 30; stops with the last event at 35.
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
}

TEST(EventQueuePeriodic, SampleAtTickSeesStateBeforeSameTickEvents)
{
    EventQueue eq;
    int value = 0;
    std::vector<int> observed;
    eq.setPeriodic(10, [&] { observed.push_back(value); });
    // The event at tick 10 coincides with the periodic firing: the
    // snapshot must observe the world *before* the event runs.
    eq.schedule(10, [&value] { value = 7; });
    eq.schedule(15, [] {});
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(observed, (std::vector<int>{0}));
}

TEST(EventQueuePeriodic, TracesScheduleAndPeriodicEvents)
{
    EventQueue eq;
    TraceSink sink;
    eq.setTrace(&sink);
    eq.setPeriodic(5, [] {});
    eq.schedule(7, [] {});
    EXPECT_TRUE(eq.run());

    bool sawSchedule = false, sawPeriodic = false;
    for (const TraceEvent &ev : sink.events()) {
        if (std::string_view(ev.name) == "sim.schedule")
            sawSchedule = true;
        if (std::string_view(ev.name) == "sim.periodic")
            sawPeriodic = true;
    }
    EXPECT_TRUE(sawSchedule);
    EXPECT_TRUE(sawPeriodic);
}

TEST(EventQueuePeriodic, IntervalZeroUninstalls)
{
    EventQueue eq;
    int fired = 0;
    eq.setPeriodic(10, [&fired] { ++fired; });
    eq.setPeriodic(0, nullptr);
    eq.schedule(25, [] {});
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);
}

// ---- drop accounting (kmetrics satellite) --------------------------

TEST(TraceSink, StatsAttributeDropsToTheOverwrittenCategory)
{
    TraceSink sink(4);
    // 6 Sim events then 2 Ecc: the ring holds the newest 4, so the
    // first 4 overwritten victims are all Sim events.
    recordN(sink, 6, TraceCat::Sim);
    recordN(sink, 2, TraceCat::Ecc);

    const TraceSinkStats stats = sink.stats();
    EXPECT_EQ(stats.recorded, 8u);
    EXPECT_EQ(stats.retained, 4u);
    EXPECT_EQ(stats.dropped, 4u);
    std::uint64_t byCatTotal = 0;
    for (const std::uint64_t n : stats.droppedByCat)
        byCatTotal += n;
    EXPECT_EQ(byCatTotal, stats.dropped)
        << "per-category drops must sum to the total";
    // All victims were Sim records.
    EXPECT_EQ(stats.droppedByCat[std::countr_zero(
                  std::uint32_t(TraceCat::Sim))],
              4u);

    const Json doc = stats.toJson();
    EXPECT_EQ(doc.at("dropped").asInt(), 4);
    EXPECT_EQ(doc.at("dropped_by_cat").at("sim").asInt(), 4);
    // Categories that never dropped are omitted.
    EXPECT_FALSE(doc.at("dropped_by_cat").contains("ecc"));
}

TEST(TraceSink, DroppedRecordsFeedTheProcessWideTotal)
{
    const std::uint64_t before = traceDroppedRecordsTotal();
    TraceSink sink(2);
    recordN(sink, 10);
    EXPECT_EQ(traceDroppedRecordsTotal(), before + 8u);
}

TEST(TraceSink, FirstDropWarnsOnceAndOnlyOnce)
{
    ScopedLogCapture capture;
    TraceSink sink(4);
    recordN(sink, 4);
    EXPECT_FALSE(capture.contains("ring buffer full"))
        << "no drop yet, no warning";
    recordN(sink, 10);
    EXPECT_TRUE(capture.contains("ring buffer full"));

    std::size_t warnings = 0;
    for (const std::string &line : capture.messages())
        if (line.find("ring buffer full") != std::string::npos)
            ++warnings;
    EXPECT_EQ(warnings, 1u) << "the warn() must be one-shot";

    // Further drops stay silent but keep counting.
    recordN(sink, 10);
    warnings = 0;
    for (const std::string &line : capture.messages())
        if (line.find("ring buffer full") != std::string::npos)
            ++warnings;
    EXPECT_EQ(warnings, 1u);
    // 24 recorded into a 4-slot ring.
    EXPECT_EQ(sink.stats().dropped, 20u);
}

TEST(TraceSink, ClearResetsPerCategoryDropCounts)
{
    TraceSink sink(2);
    recordN(sink, 6, TraceCat::L2);
    ASSERT_GT(sink.stats().dropped, 0u);
    sink.clear();
    const TraceSinkStats stats = sink.stats();
    for (const std::uint64_t n : stats.droppedByCat)
        EXPECT_EQ(n, 0u);
}
