/**
 * @file
 * Tests for the trace-driven workload: parsing (records, comments,
 * hex/dec addresses, ragged streams, malformed input), the
 * write/replay round trip against a synthetic workload, and a full
 * GpuSystem run driven by a trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/protection.hh"
#include "gpu/gpu_system.hh"
#include "gpu/trace_workload.hh"

using namespace killi;

TEST(TraceTest, ParsesBasicRecords)
{
    std::istringstream in(
        "# demo trace\n"
        "0 0 R 0x1000 5\n"
        "0 0 W 4096 2\n"
        "0 1 R 0x2000\n");
    const auto wl = TraceWorkload::fromStream(in, "demo");
    EXPECT_EQ(wl->opsFor(0, 0), 2u);
    EXPECT_EQ(wl->opsFor(0, 1), 1u);
    EXPECT_EQ(wl->totalOps(), 3u);

    const MemOp a = wl->op(0, 0, 0);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_FALSE(a.isWrite);
    EXPECT_EQ(a.computeCycles, 5u);

    const MemOp b = wl->op(0, 0, 1);
    EXPECT_EQ(b.addr, 4096u);
    EXPECT_TRUE(b.isWrite);

    const MemOp c = wl->op(0, 1, 0);
    EXPECT_EQ(c.computeCycles, 0u); // compute column optional
}

TEST(TraceTest, InlineCommentsAndBlankLines)
{
    std::istringstream in(
        "\n"
        "0 0 R 0x40 1  # first load\n"
        "   # a full-line comment\n"
        "0 0 R 0x80 1\n");
    const auto wl = TraceWorkload::fromStream(in, "c");
    EXPECT_EQ(wl->opsFor(0, 0), 2u);
}

TEST(TraceTest, RaggedStreamsAreSupported)
{
    std::istringstream in(
        "0 0 R 0x00 1\n"
        "0 0 R 0x40 1\n"
        "0 0 R 0x80 1\n"
        "1 2 W 0xC0 1\n");
    const auto wl = TraceWorkload::fromStream(in, "ragged");
    EXPECT_EQ(wl->opsFor(0, 0), 3u);
    EXPECT_EQ(wl->opsFor(1, 2), 1u);
    EXPECT_EQ(wl->opsFor(1, 0), 0u); // absent stream
    EXPECT_EQ(wl->wavefrontsPerCu(), 3u);
    EXPECT_EQ(wl->opsPerWavefront(), 3u); // the longest stream
}

TEST(TraceTest, MalformedOpIsFatal)
{
    std::istringstream in("0 0 X 0x1000\n");
    EXPECT_DEATH(TraceWorkload::fromStream(in, "bad"), "");
}

TEST(TraceTest, EmptyTraceIsFatal)
{
    std::istringstream in("# nothing here\n");
    EXPECT_DEATH(TraceWorkload::fromStream(in, "empty"), "");
}

TEST(TraceTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceWorkload::fromFile("/nonexistent/trace.txt"),
                 "");
}

TEST(TraceTest, OutOfRangeOpIsFatal)
{
    std::istringstream in("0 0 R 0x0 1\n");
    const auto wl = TraceWorkload::fromStream(in, "t");
    EXPECT_DEATH(wl->op(0, 0, 5), "");
}

TEST(TraceTest, RoundTripMatchesSyntheticWorkload)
{
    // Export a synthetic workload, re-parse it, and verify every op
    // is bit-identical.
    const auto original = makeWorkload("spmv", 0.01);
    std::stringstream buffer;
    writeTrace(buffer, *original, /*cus=*/2);
    const auto replay = TraceWorkload::fromStream(buffer, "replay");

    for (unsigned cu = 0; cu < 2; ++cu) {
        for (unsigned wf = 0; wf < original->wavefrontsPerCu(); ++wf) {
            ASSERT_EQ(replay->opsFor(cu, wf),
                      original->opsPerWavefront());
            for (std::uint64_t i = 0; i < original->opsPerWavefront();
                 ++i) {
                const MemOp a = original->op(cu, wf, i);
                const MemOp b = replay->op(cu, wf, i);
                EXPECT_EQ(a.addr, b.addr);
                EXPECT_EQ(a.isWrite, b.isWrite);
                EXPECT_EQ(a.computeCycles, b.computeCycles);
            }
        }
    }
}

TEST(TraceTest, ReplayedRunMatchesSyntheticRun)
{
    // The simulator must be indistinguishable between a synthetic
    // workload and its exported trace.
    GpuParams gp;
    gp.numCus = 2;
    const auto original = makeWorkload("dgemm", 0.01);
    std::stringstream buffer;
    writeTrace(buffer, *original, gp.numCus);
    const auto replay = TraceWorkload::fromStream(buffer, "replay");

    FaultFreeProtection p1, p2;
    const RunResult a = GpuSystem(gp, p1, *original).run();
    const RunResult b = GpuSystem(gp, p2, *replay).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2ReadMisses, b.l2ReadMisses);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
}

TEST(TraceTest, RunsThroughFullSystem)
{
    std::stringstream trace;
    trace << "# two CUs hammering a shared line plus private data\n";
    for (int i = 0; i < 200; ++i) {
        trace << "0 0 R 0x" << std::hex << (0x1000 + 64 * (i % 16))
              << std::dec << " 3\n";
        trace << "1 0 " << (i % 4 == 0 ? 'W' : 'R') << " 0x"
              << std::hex << (0x8000 + 64 * (i % 8)) << std::dec
              << " 2\n";
    }
    const auto wl = TraceWorkload::fromStream(trace, "hammer");
    GpuParams gp;
    gp.numCus = 2;
    FaultFreeProtection prot;
    const RunResult r = GpuSystem(gp, prot, *wl).run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.sdc, 0u);
    EXPECT_GT(r.l2ReadHits + r.l2ReadMisses, 0u);
}
