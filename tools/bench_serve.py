#!/usr/bin/env python3
"""Serving-stack scaling benchmark: single kserved vs kfleetd fleet.

Boots (a) one kserved worker and (b) a kfleetd front end spawning
N kserved workers, fires the same kload barrage at each, and writes a
combined BENCH_serve.json with the two throughput/latency reports and
their ratio.

Because CI runners (and the committed baseline's host) can be
core-starved, the default mode emulates a fixed per-job service time
with the daemons' debug-job-delay-ms hook: sleeps overlap across
worker processes even on one core, so the fleet's scaling is visible
and stable, while the real compute component stays small. The report
labels the mode explicitly ("service_time_emulation_ms") so nobody
mistakes the numbers for real sweep throughput; run with
--delay-ms 0 --scale 0.05 on a many-core host for real numbers.

Usage:
    bench_serve.py --build BUILD_DIR [--out BENCH_serve.json]
                   [--workers 3] [--jobs 12] [--clients 6]
                   [--delay-ms 500] [--scale 0.005]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def wait_socket(cli, sock, tries=100):
    for _ in range(tries):
        rc = subprocess.run(
            [cli, "ping", f"socket={sock}"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        ).returncode
        if rc == 0:
            return
        time.sleep(0.2)
    raise RuntimeError(f"endpoint {sock} never came up")


def drain(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def run_kload(kload, sock, args, report_path):
    cmd = [
        kload,
        f"socket={sock}",
        f"clients={args.clients}",
        f"jobs={args.jobs}",
        "mix-cached=0",  # scaling is about real service, not hits
        f"scale={args.scale}",
        "warmup=0",
        f"workloads={args.workloads}",
        f"json={report_path}",
    ]
    subprocess.run(cmd, check=True)
    with open(report_path, encoding="utf-8") as fh:
        return json.load(fh)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", required=True,
                    help="CMake build directory")
    ap.add_argument("--out", default="BENCH_serve.json")
    ap.add_argument("--workers", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=12)
    ap.add_argument("--clients", type=int, default=6)
    ap.add_argument("--delay-ms", type=int, default=800,
                    help="emulated per-job service time (0 = real "
                         "compute only)")
    ap.add_argument("--scale", type=float, default=0.003)
    ap.add_argument("--workloads", default="xsbench")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail unless fleet jobs/sec >= this multiple "
                         "of single-worker jobs/sec")
    args = ap.parse_args()

    build = os.path.abspath(args.build)
    kserved = os.path.join(build, "src/serve/kserved")
    kfleetd = os.path.join(build, "src/fleet/kfleetd")
    kcli = os.path.join(build, "src/serve/kcli")
    kload = os.path.join(build, "bench/kload")
    for exe in (kserved, kfleetd, kcli, kload):
        if not os.access(exe, os.X_OK):
            sys.exit(f"bench_serve: missing binary {exe}")

    with tempfile.TemporaryDirectory(prefix="bench_serve.") as tmp:
        delay = [f"debug-job-delay-ms={args.delay_ms}"] \
            if args.delay_ms else []

        # -- Single kserved worker.
        single_sock = os.path.join(tmp, "single.sock")
        single = subprocess.Popen(
            [kserved, f"socket={single_sock}", "threads=1"] + delay,
            cwd=tmp)
        try:
            wait_socket(kcli, single_sock)
            single_report = run_kload(
                kload, single_sock, args,
                os.path.join(tmp, "kload_single.json"))
        finally:
            drain(single)

        # -- kfleetd spawning N workers (threads=1 each, same delay).
        fleet_sock = os.path.join(tmp, "fleet.sock")
        fleet_cmd = [
            kfleetd,
            f"socket={fleet_sock}",
            f"spawn-workers={args.workers}",
            f"spawn-dir={tmp}",
            f"worker-bin={kserved}",
            "worker-threads=1",
        ]
        if delay:
            fleet_cmd.append(f"worker-args={delay[0]}")
        fleet = subprocess.Popen(fleet_cmd, cwd=tmp)
        try:
            wait_socket(kcli, fleet_sock)
            fleet_report = run_kload(
                kload, fleet_sock, args,
                os.path.join(tmp, "kload_fleet.json"))
        finally:
            drain(fleet)

    single_rate = single_report["results"]["jobs_per_sec"]
    fleet_rate = fleet_report["results"]["jobs_per_sec"]
    speedup = fleet_rate / single_rate if single_rate else 0.0

    doc = {
        "bench": "serve_scaling",
        "mode": {
            "service_time_emulation_ms": args.delay_ms,
            "note": (
                "per-job service time emulated with "
                "debug-job-delay-ms so multi-process scaling is "
                "measurable on core-starved hosts; not real sweep "
                "throughput" if args.delay_ms else
                "real compute, no emulated service time"),
            "host_cpus": os.cpu_count(),
        },
        "config": {
            "workers": args.workers,
            "worker_threads": 1,
            "jobs": args.jobs,
            "clients": args.clients,
            "scale": args.scale,
            "workloads": args.workloads,
        },
        "single": single_report["results"],
        "fleet": fleet_report["results"],
        "speedup_jobs_per_sec": speedup,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"bench_serve: single {single_rate:.2f} jobs/s, "
          f"fleet({args.workers}) {fleet_rate:.2f} jobs/s, "
          f"speedup {speedup:.2f}x -> {args.out}")
    if args.min_speedup is not None and speedup < args.min_speedup:
        sys.exit(f"bench_serve: FAIL: speedup {speedup:.2f}x < "
                 f"required {args.min_speedup:.2f}x")


if __name__ == "__main__":
    main()
