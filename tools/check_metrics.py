#!/usr/bin/env python3
"""Sanity-check kserved/kfleetd Prometheus scrapes (CI smoke jobs).

Usage:
    check_metrics.py [--fleet] BEFORE.prom AFTER.prom [KTOP.json]

Parses two /metrics scrapes taken around a kcli workload, and
asserts:

  * both scrapes parse cleanly (every sample line belongs to a
    family declared with # TYPE, values are finite numbers, and
    histogram bucket counts are cumulative with le="+Inf" == _count);
  * every required family is present — including the multi-reactor
    front-end families (kserved_io_reactors, per-reactor accept and
    wakeup counters) every daemon now exposes;
  * counters are monotonic from BEFORE to AFTER;
  * the workload left a visible trace (admissions and job latency
    count increased);
  * with --fleet (scrapes taken from kfleetd): every kfleet_* family
    is present, at least one worker is attached, and the dispatch
    ledger balances at the drained AFTER scrape —
    kfleet_shards_dispatched_total == kfleet_shards_completed_total
    + kfleet_shards_cancelled_total (every dispatch that reached a
    worker's "submitted" frame ends in exactly one terminal bucket);
  * optionally, a `ktop --once --json` snapshot taken at the same
    time as AFTER agrees with it on stable (quiescent-daemon)
    families.

Exits non-zero with a readable message on the first violation.
"""

import json
import math
import re
import sys

REQUIRED_FAMILIES = [
    "kserved_admissions_total",
    "kserved_rejections_total",
    "kserved_cancellations_total",
    "kserved_queue_depth",
    "kserved_queue_wait_seconds",
    "kserved_jobs_total",
    "kserved_job_seconds",
    "kserved_job_stage_seconds",
    "kserved_cache_hits_total",
    "kserved_cache_misses_total",
    "kserved_cache_evictions_total",
    "kserved_cache_bytes",
    "kserved_cache_hit_seconds",
    "kserved_warm_store_hits_total",
    "kserved_warm_store_misses_total",
    "kserved_warm_store_insertions_total",
    "kserved_warm_store_evictions_total",
    "kserved_warm_store_entries",
    "kserved_warm_store_bytes",
    "kserved_connections_total",
    "kserved_connections_rejected_total",
    "kserved_frames_received_total",
    "kserved_frames_sent_total",
    "kserved_protocol_errors_total",
    "kserved_outbox_bytes_total",
    "kserved_fetch_hits_total",
    "kserved_fetch_misses_total",
    "kserved_io_reactors",
    "kserved_reactor_connections_total",
    "kserved_reactor_wakeups_total",
    "kserved_uptime_seconds",
    "ktrace_dropped_records_total",
]

FLEET_FAMILIES = [
    "kfleet_workers",
    "kfleet_campaigns_total",
    "kfleet_shards_dispatched_total",
    "kfleet_shards_completed_total",
    "kfleet_shards_cancelled_total",
    "kfleet_steals_total",
    "kfleet_hedges_total",
    "kfleet_hedge_wins_total",
    "kfleet_peer_fetches_total",
    "kfleet_peer_fetch_misses_total",
    "kfleet_worker_rejections_total",
    "kfleet_shard_seconds",
]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(path):
    """-> (families: name -> type, samples: (name, labels) -> float)"""
    families = {}
    samples = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                _, _, name, ftype = line.split(" ", 3)
                families[name] = ftype
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparsable sample: {line!r}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            if name not in families and base not in families:
                fail(f"{path}:{lineno}: sample {name} has no # TYPE")
            try:
                v = float(value)
            except ValueError:
                fail(f"{path}:{lineno}: bad value {value!r}")
            if math.isnan(v) or math.isinf(v):
                fail(f"{path}:{lineno}: non-finite value {value!r}")
            if (name, labels) in samples:
                fail(f"{path}:{lineno}: duplicate sample {name}{labels}")
            samples[(name, labels)] = v
    check_histograms(path, families, samples)
    return families, samples


def check_histograms(path, families, samples):
    for fam, ftype in families.items():
        if ftype != "histogram":
            continue
        # Group buckets by their non-le label set.
        series = {}
        for (name, labels), v in samples.items():
            if name != fam + "_bucket":
                continue
            le = re.search(r'le="([^"]*)"', labels)
            if not le:
                fail(f"{path}: {fam} bucket without le: {labels}")
            rest = re.sub(r'le="[^"]*",?', "", labels).replace(
                "{}", ""
            )
            series.setdefault(rest, []).append((float(le.group(1)), v))
        for rest, buckets in series.items():
            buckets.sort()
            prev = -1.0
            for le, v in buckets:
                if v < prev:
                    fail(
                        f"{path}: {fam}{rest}: bucket le={le} count "
                        f"{v} < previous {prev} (not cumulative)"
                    )
                prev = v
            if buckets[-1][0] != math.inf:
                fail(f"{path}: {fam}{rest}: missing le=\"+Inf\"")
            count = lookup_count(samples, fam, rest)
            if count is not None and buckets[-1][1] != count:
                fail(
                    f"{path}: {fam}{rest}: le=+Inf "
                    f"{buckets[-1][1]} != _count {count}"
                )


def lookup_count(samples, fam, rest_labels):
    for (name, labels), v in samples.items():
        if name != fam + "_count":
            continue
        if labels == rest_labels or (
            not rest_labels and labels in ("", "{}")
        ):
            return v
        if labels.strip("{}").strip(",") == rest_labels.strip(
            "{}"
        ).strip(","):
            return v
    return None


def family_total(families, samples, fam, suffix=""):
    """Sum of all samples of one family (plus optional suffix)."""
    total = 0.0
    for (name, _), v in samples.items():
        if name == fam + suffix:
            total += v
    return total


def main():
    argv = sys.argv[1:]
    fleet = "--fleet" in argv
    argv = [a for a in argv if a != "--fleet"]
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    before_path, after_path = argv[0], argv[1]
    fam_b, s_b = parse(before_path)
    fam_a, s_a = parse(after_path)

    required = REQUIRED_FAMILIES + (FLEET_FAMILIES if fleet else [])
    for fam in required:
        for path, fams in ((before_path, fam_b), (after_path, fam_a)):
            if fam not in fams:
                fail(f"{path}: required family {fam} missing")

    if fleet:
        check_fleet(after_path, s_a)

    # Counter monotonicity, per labeled series.
    for (name, labels), v in s_b.items():
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        ftype = fam_b.get(name, fam_b.get(base))
        if ftype not in ("counter", "histogram"):
            continue
        after = s_a.get((name, labels))
        if after is None:
            fail(f"{after_path}: series {name}{labels} disappeared")
        if after < v:
            fail(
                f"counter {name}{labels} went backwards: "
                f"{v} -> {after}"
            )

    if family_total(fam_a, s_a, "kserved_admissions_total") <= \
       family_total(fam_b, s_b, "kserved_admissions_total"):
        fail("kserved_admissions_total did not increase across the "
             "kcli workload")
    if family_total(fam_a, s_a, "kserved_job_seconds", "_count") <= \
       family_total(fam_b, s_b, "kserved_job_seconds", "_count"):
        fail("kserved_job_seconds_count did not increase across the "
             "kcli workload")

    if len(argv) == 3:
        with open(argv[2], encoding="utf-8") as fh:
            snap = json.load(fh)
        # ktop ran against a quiescent daemon right after AFTER was
        # scraped: cumulative job/cache counters must agree exactly.
        pairs = [
            ("jobs.done",
             labeled(s_a, "kserved_jobs_total", "done")),
            ("cache.hits",
             labeled(s_a, "kserved_cache_hits_total", None)),
            ("cache.misses",
             labeled(s_a, "kserved_cache_misses_total", None)),
            ("scheduler.submitted",
             labeled(s_a, "kserved_admissions_total", None)),
        ]
        for dotted, want in pairs:
            got = snap
            for part in dotted.split("."):
                got = got[part]
            if float(got) != float(want):
                fail(
                    f"ktop snapshot {dotted}={got} disagrees with "
                    f"{after_path} ({want})"
                )

    print("check_metrics: OK")


def check_fleet(path, samples):
    """Fleet-specific assertions on a drained kfleetd scrape."""
    workers = family_total({}, samples, "kfleet_workers")
    if workers < 1:
        fail(f"{path}: kfleet_workers is {workers}; no fleet attached")
    dispatched = family_total(
        {}, samples, "kfleet_shards_dispatched_total")
    completed = family_total(
        {}, samples, "kfleet_shards_completed_total")
    cancelled = family_total(
        {}, samples, "kfleet_shards_cancelled_total")
    # The dispatch ledger: at a drained scrape nothing is in flight,
    # so every dispatch that produced a "submitted" frame must have
    # landed in exactly one terminal bucket.
    if dispatched != completed + cancelled:
        fail(
            f"{path}: kfleet dispatch ledger unbalanced: "
            f"dispatched {dispatched} != completed {completed} + "
            f"cancelled {cancelled}"
        )
    wins = family_total({}, samples, "kfleet_hedge_wins_total")
    hedges = family_total({}, samples, "kfleet_hedges_total")
    if wins > hedges:
        fail(
            f"{path}: kfleet_hedge_wins_total {wins} exceeds "
            f"kfleet_hedges_total {hedges}"
        )


def labeled(samples, fam, outcome):
    """Value of fam (outcome=... label when given, else unlabeled)."""
    for (name, labels), v in samples.items():
        if name != fam:
            continue
        if outcome is None:
            return v
        if f'outcome="{outcome}"' in labels:
            return v
    fail(f"family {fam} (outcome={outcome}) not found in AFTER scrape")


if __name__ == "__main__":
    main()
