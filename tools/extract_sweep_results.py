#!/usr/bin/env python3
"""Extract the deterministic subset of a sweep benchmark report.

The ``workloads`` section of a fig4-style JSON report holds only
simulated state: event counters and ratios derived from them (mpki,
normalized_time, area fractions). For a fixed die seed it is
bit-identical across hosts, job counts, and KILLI_CHECK_INVARIANTS
settings. Everything else in the report (campaign wall-clock stats,
option echo) legitimately varies run to run.

CI's perf-smoke job pins this subset against a recorded golden
(tests/golden/) so hot-path optimizations — bit-sliced codecs, skip
sampling, scratch reuse — can never silently change simulation
results. See EXPERIMENTS.md ("Hot-path perf harness") for the
re-record command and the libm caveat.

Usage: extract_sweep_results.py <report.json>  (canonical JSON on
stdout: sorted keys, fixed indentation, trailing newline)
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as fh:
        doc = json.load(fh)
    json.dump({"workloads": doc["workloads"]}, sys.stdout,
              sort_keys=True, indent=1)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
