/**
 * @file
 * ktop: live terminal dashboard for a running kserved.
 *
 *     ktop [socket=… | port=…] [interval-ms=1000]   live dashboard
 *     ktop --once                                   one dashboard frame
 *     ktop --once --json                            snapshot as JSON
 *
 * Each tick sends one `metrics` protocol frame over a fresh
 * connection (so a wedged dashboard never pins a daemon connection),
 * flattens the reply with ktopSnapshot(), and repaints via KtopModel.
 * `--once --json` prints the stable snapshot object and exits —
 * that's the scriptable spelling, pinned by a golden test and used by
 * CI's metrics checker. Ctrl-C exits the live view.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "common/json.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "metrics/dashboard.hh"
#include "serve/client/client.hh"

using namespace killi;
using namespace killi::serve;

namespace
{

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

/** One metrics round trip on a fresh connection. */
bool
fetchMetrics(const Options &opts, Json &metricsJson, std::string *err)
{
    Client client;
    const std::string sock = opts.get<std::string>("socket");
    bool ok;
    if (!sock.empty()) {
        ok = client.connectUnix(sock, err);
    } else {
        const unsigned port = opts.get<unsigned>("port");
        if (port == 0) {
            if (err)
                *err = "socket= is empty and no port= given";
            return false;
        }
        ok = client.connectTcp(std::uint16_t(port), err);
    }
    if (!ok)
        return false;
    Json req = Json::object();
    req.set("type", Json::string("metrics"));
    Json reply;
    if (!client.send(req, err) ||
        !client.recvWithin(reply, 5000, err))
        return false;
    if (reply.at("type").asString() != "metrics_reply") {
        if (err)
            *err = "unexpected reply type '" +
                   reply.at("type").asString() + "'";
        return false;
    }
    metricsJson = reply.at("metrics");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("ktop",
                 "live terminal dashboard over kserved's metrics "
                 "frame (see SERVING.md, \"Metrics & ktop\")");
    opts.add("socket", "kserved.sock",
             "kserved unix socket path (empty switches to TCP)");
    opts.add<unsigned>("port", 0u,
                       "kserved TCP port on 127.0.0.1 when socket= "
                       "is empty")
        .range(0u, 65535u);
    opts.add<unsigned>("interval-ms", 1000u,
                       "refresh interval of the live view")
        .range(100u, 60000u);
    opts.add<bool>("once", false,
                   "print one frame and exit (no screen clearing)");
    opts.add<bool>("json", false,
                   "with once=1: print the snapshot JSON instead of "
                   "the dashboard");
    // Accept the conventional --once/--json flag spellings; Options
    // already treats "--flag" as "flag=1".
    opts.parse(argc, argv);

    const bool once = opts.get<bool>("once");
    const bool json = opts.get<bool>("json");
    if (json && !once)
        fatal("ktop: json=1 requires once=1");

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    metrics::KtopModel model;
    const double intervalS =
        double(opts.get<unsigned>("interval-ms")) / 1000.0;
    bool first = true;
    while (!gStop) {
        Json metricsJson;
        std::string err;
        if (!fetchMetrics(opts, metricsJson, &err))
            fatal("ktop: %s", err.c_str());
        const Json snapshot = metrics::ktopSnapshot(metricsJson);
        if (json) {
            snapshot.dump(std::cout, 2);
            std::cout << "\n";
            return 0;
        }
        const std::string frame =
            model.render(snapshot, first ? 0.0 : intervalS);
        if (once) {
            std::cout << frame;
            return 0;
        }
        // Clear + home; the frame repaints the whole dashboard.
        std::fputs("\033[H\033[2J", stdout);
        std::fputs(frame.c_str(), stdout);
        std::fflush(stdout);
        first = false;
        // Sleep in small slices so Ctrl-C exits promptly.
        for (int waited = 0;
             !gStop &&
             waited < int(opts.get<unsigned>("interval-ms"));
             waited += 50) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }
    std::fputs("\n", stdout);
    return 0;
}
